//! Primality, prime-power detection, and integer-root utilities.
//!
//! The design distribution scheme (paper §5.3) needs the smallest prime power
//! `q` such that `q² + q + 1 ≥ v`. Everything here is exact integer
//! arithmetic — the feasibility analysis in `pmr-core` depends on these
//! routines never being off by one.

/// Deterministic Miller–Rabin primality test, exact for all `u64`.
///
/// Uses the well-known deterministic witness set
/// `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}` which is sufficient for all
/// 64-bit integers.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n.is_multiple_of(p) {
            return n == p;
        }
    }
    // n is odd and > 37 here.
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Modular multiplication `a·b mod m` without overflow (via `u128`).
#[inline]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular exponentiation `a^e mod m` by square-and-multiply.
pub fn pow_mod(mut a: u64, mut e: u64, m: u64) -> u64 {
    if m == 1 {
        return 0;
    }
    let mut r = 1u64;
    a %= m;
    while e > 0 {
        if e & 1 == 1 {
            r = mul_mod(r, a, m);
        }
        a = mul_mod(a, a, m);
        e >>= 1;
    }
    r
}

/// The smallest prime strictly greater than `n`.
pub fn next_prime(n: u64) -> u64 {
    let mut c = n + 1;
    if c <= 2 {
        return 2;
    }
    if c.is_multiple_of(2) {
        c += 1;
    }
    while !is_prime(c) {
        c += 2;
    }
    c
}

/// Exact integer square root: the largest `r` with `r² ≤ n`.
pub fn isqrt(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    // f64 sqrt gives a good initial guess; correct it exactly.
    let mut r = (n as f64).sqrt() as u64;
    // Guard against floating error in either direction.
    while r.checked_mul(r).is_none_or(|sq| sq > n) {
        r -= 1;
    }
    while (r + 1).checked_mul(r + 1).is_some_and(|sq| sq <= n) {
        r += 1;
    }
    r
}

/// Exact integer square root over `u128`: the largest `r` with `r² ≤ n`.
///
/// The feasibility analysis needs this for byte products above `2^53`,
/// where `f64::sqrt` can no longer represent the operand exactly.
pub fn isqrt128(n: u128) -> u128 {
    if n < 2 {
        return n;
    }
    // Newton's method from an over-estimate (`2^(⌊log₂ n⌋/2 + 1) ≥ √n`);
    // with integer division the iterates decrease monotonically to ⌊√n⌋.
    let mut x = 1u128 << (n.ilog2() / 2 + 1);
    loop {
        let y = (x + n / x) / 2;
        if y >= x {
            return x;
        }
        x = y;
    }
}

/// Exact integer k-th root: the largest `r` with `r^k ≤ n`.
pub fn ikroot(n: u64, k: u32) -> u64 {
    assert!(k >= 1);
    if k == 1 || n <= 1 {
        return n;
    }
    let mut r = (n as f64).powf(1.0 / k as f64).round() as u64;
    let pow = |b: u64| -> Option<u64> {
        let mut acc: u64 = 1;
        for _ in 0..k {
            acc = acc.checked_mul(b)?;
        }
        Some(acc)
    };
    while r > 0 && pow(r).is_none_or(|p| p > n) {
        r -= 1;
    }
    while pow(r + 1).is_some_and(|p| p <= n) {
        r += 1;
    }
    r
}

/// If `n = p^k` for a prime `p` and `k ≥ 1`, returns `Some((p, k))`.
///
/// `prime_power(1)` is `None` (1 is not a prime power).
pub fn prime_power(n: u64) -> Option<(u64, u32)> {
    if n < 2 {
        return None;
    }
    // The exponent is at most log2(n); try largest k first so we report the
    // canonical (p, k) with p prime.
    let max_k = 63 - n.leading_zeros();
    for k in (1..=max_k.max(1)).rev() {
        let r = ikroot(n, k);
        let mut acc: u64 = 1;
        let mut ok = true;
        for _ in 0..k {
            match acc.checked_mul(r) {
                Some(v) => acc = v,
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok && acc == n && is_prime(r) {
            return Some((r, k));
        }
    }
    None
}

/// True iff `n` is a prime power `p^k`, `k ≥ 1`.
pub fn is_prime_power(n: u64) -> bool {
    prime_power(n).is_some()
}

/// The smallest prime power `q ≥ n`. Panics if none fits in `u64` (cannot
/// happen for realistic inputs since primes are dense).
pub fn next_prime_power_at_least(n: u64) -> u64 {
    let mut c = n.max(2);
    loop {
        if is_prime_power(c) {
            return c;
        }
        c += 1;
    }
}

/// Number of points/blocks of a projective plane of order `q`: `q² + q + 1`.
#[inline]
pub fn plane_size(q: u64) -> u64 {
    q * q + q + 1
}

/// The smallest prime power `q` such that `q² + q + 1 ≥ v` (paper §5.3:
/// "the projective plane of the smallest prime q such that q̂ ≥ v").
///
/// For `v ≤ 3` this returns `q = 2` (the Fano plane is the smallest
/// projective plane).
pub fn smallest_plane_order(v: u64) -> u64 {
    // q² + q + 1 ≥ v  ⟺  q ≥ (−1 + √(4v − 3)) / 2.
    let lower = if v <= 3 {
        2
    } else {
        let s = isqrt(4 * v - 3);
        // ceil((s - 1) / 2), adjusted exactly below.
        ((s.saturating_sub(1)) / 2).max(2)
    };
    let mut q = lower;
    while plane_size(q) < v {
        q += 1;
    }
    // q is now ≥ the real bound; walk up to the next prime power.
    loop {
        if is_prime_power(q) && plane_size(q) >= v {
            return q;
        }
        q += 1;
    }
}

/// Simple sieve of Eratosthenes; returns all primes `≤ n`.
pub fn sieve(n: usize) -> Vec<u64> {
    if n < 2 {
        return Vec::new();
    }
    let mut composite = vec![false; n + 1];
    let mut primes = Vec::new();
    for i in 2..=n {
        if !composite[i] {
            primes.push(i as u64);
            let mut j = i * i;
            while j <= n {
                composite[j] = true;
                j += i;
            }
        }
    }
    primes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let known = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43];
        for n in 0..45u64 {
            assert_eq!(is_prime(n), known.contains(&n), "n={n}");
        }
    }

    #[test]
    fn sieve_agrees_with_miller_rabin() {
        let primes = sieve(10_000);
        for n in 0..=10_000u64 {
            assert_eq!(is_prime(n), primes.contains(&n), "n={n}");
        }
    }

    #[test]
    fn large_known_primes() {
        assert!(is_prime(2_147_483_647)); // 2^31 - 1, Mersenne
        assert!(is_prime(67_280_421_310_721)); // factor of 2^128 + 1
        assert!(!is_prime(3_215_031_751)); // strong pseudoprime to bases 2,3,5,7
        assert!(is_prime(18_446_744_073_709_551_557)); // largest u64 prime
    }

    #[test]
    fn next_prime_basics() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(2), 3);
        assert_eq!(next_prime(7), 11);
        assert_eq!(next_prime(100), 101);
    }

    #[test]
    fn isqrt_exact() {
        for n in 0..5000u64 {
            let r = isqrt(n);
            assert!(r * r <= n && (r + 1) * (r + 1) > n, "n={n} r={r}");
        }
        assert_eq!(isqrt(u64::MAX), 4_294_967_295);
    }

    #[test]
    fn isqrt128_exact() {
        for n in 0..5000u128 {
            let r = isqrt128(n);
            assert!(r * r <= n && (r + 1) * (r + 1) > n, "n={n} r={r}");
        }
        // Around perfect squares beyond f64's 2^53 exact-integer range.
        for base in [(1u128 << 53) + 1, (1 << 64) - 1, (1 << 63) + 12345] {
            for n in [base * base - 1, base * base, base * base + 1] {
                let r = isqrt128(n);
                assert!(r * r <= n, "n={n} r={r}");
                assert!((r + 1).checked_mul(r + 1).is_none_or(|sq| sq > n), "n={n} r={r}");
            }
        }
        assert_eq!(isqrt128(u128::MAX), (1 << 64) - 1);
    }

    #[test]
    fn ikroot_exact() {
        assert_eq!(ikroot(27, 3), 3);
        assert_eq!(ikroot(26, 3), 2);
        assert_eq!(ikroot(1 << 60, 60), 2);
        assert_eq!(ikroot(u64::MAX, 2), 4_294_967_295);
        for n in [0u64, 1, 2, 63, 64, 65, 4095, 4096, 4097] {
            for k in 1..=6u32 {
                let r = ikroot(n, k);
                let p = |b: u64| (0..k).try_fold(1u64, |a, _| a.checked_mul(b));
                assert!(p(r).unwrap() <= n, "n={n} k={k}");
                assert!(p(r + 1).is_none_or(|v| v > n), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn prime_power_detection() {
        assert_eq!(prime_power(2), Some((2, 1)));
        assert_eq!(prime_power(4), Some((2, 2)));
        assert_eq!(prime_power(8), Some((2, 3)));
        assert_eq!(prime_power(9), Some((3, 2)));
        assert_eq!(prime_power(27), Some((3, 3)));
        assert_eq!(prime_power(121), Some((11, 2)));
        assert_eq!(prime_power(1), None);
        assert_eq!(prime_power(6), None);
        assert_eq!(prime_power(12), None);
        assert_eq!(prime_power(100), None);
        assert_eq!(prime_power(1024), Some((2, 10)));
    }

    #[test]
    fn smallest_plane_order_examples() {
        // Paper §5.3: "If, e.g., v = 10,000, then q = 101".
        // (q=99 gives q̂=9901 < 10⁴; 100 = 2²·5² is not a prime power.)
        assert_eq!(smallest_plane_order(10_000), 101);
        assert_eq!(smallest_plane_order(7), 2); // Fano plane, q̂ = 7
        assert_eq!(smallest_plane_order(8), 3); // q̂ = 13
        assert_eq!(smallest_plane_order(13), 3);
        assert_eq!(smallest_plane_order(14), 4); // q = 4 = 2², q̂ = 21
        assert_eq!(smallest_plane_order(1), 2);
        // Every returned q is a prime power and minimal.
        for v in 2..2000u64 {
            let q = smallest_plane_order(v);
            assert!(is_prime_power(q));
            assert!(plane_size(q) >= v);
            // No smaller prime power works.
            for smaller in 2..q {
                if is_prime_power(smaller) {
                    assert!(plane_size(smaller) < v, "v={v} q={q} smaller={smaller}");
                }
            }
        }
    }

    #[test]
    fn plane_size_values() {
        assert_eq!(plane_size(2), 7);
        assert_eq!(plane_size(3), 13);
        assert_eq!(plane_size(101), 10_303);
    }
}
