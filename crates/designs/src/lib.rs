//! # pmr-designs — combinatorial design substrate
//!
//! Everything the *design distribution scheme* of
//! *Pairwise Element Computation with MapReduce* (Kiefer, Volk, Lehner;
//! HPDC 2010, §5.3) needs:
//!
//! * [`primes`] — exact primality / prime-power / integer-root arithmetic,
//!   including the paper's "smallest prime power `q` with `q² + q + 1 ≥ v`";
//! * [`poly`] + [`gf`] — polynomial and finite-field arithmetic `GF(p^k)`;
//! * [`mod@plane`] — projective planes of order `q`: the paper's Theorem 2
//!   construction (prime `q`) and classical `PG(2, q)` (all prime powers),
//!   plus the truncated "design-like" structure for arbitrary `v`;
//! * [`design`] — the `(v, k, 1)`-design type with exact verification of the
//!   *every-pair-in-exactly-one-block* property that makes the distribution
//!   scheme correct;
//! * [`quorum`] — difference covers of `Z_v` (Singer when optimal, pruned
//!   `⌈√v⌉`-construction otherwise), the substrate of the cyclic-quorum
//!   distribution scheme.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod design;
pub mod gf;
pub mod plane;
pub mod poly;
pub mod primes;
pub mod quorum;
pub mod singer;

pub use design::{BlockDesign, DesignError};
pub use gf::Gf;
pub use plane::{pg2, plane, theorem2, truncated_plane};
pub use primes::{is_prime, is_prime_power, plane_size, prime_power, smallest_plane_order};
pub use quorum::{difference_cover, difference_cover_size, is_difference_cover};
pub use singer::{is_perfect_difference_set, singer, singer_difference_set};
