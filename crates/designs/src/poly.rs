//! Dense polynomial arithmetic over prime fields `GF(p)`.
//!
//! Supports the irreducible-modulus search that backs extension-field
//! arithmetic in [`crate::gf`]. Coefficients are stored low-to-high and kept
//! normalized (no trailing zeros; the zero polynomial has an empty
//! coefficient vector).

/// A polynomial over `GF(p)`; coefficients low-to-high, normalized.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Poly {
    coeffs: Vec<u64>,
}

impl Poly {
    /// Builds a polynomial from raw coefficients (low-to-high), trimming
    /// trailing zeros.
    pub fn from_coeffs(mut coeffs: Vec<u64>) -> Poly {
        while coeffs.last() == Some(&0) {
            coeffs.pop();
        }
        Poly { coeffs }
    }

    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly { coeffs: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Poly {
        Poly { coeffs: vec![1] }
    }

    /// Monomial `x^d`.
    pub fn monomial(d: usize) -> Poly {
        let mut coeffs = vec![0; d + 1];
        coeffs[d] = 1;
        Poly { coeffs }
    }

    /// True iff this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Degree; `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Coefficient slice, low-to-high.
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Leading coefficient; 0 for the zero polynomial.
    pub fn leading(&self) -> u64 {
        *self.coeffs.last().unwrap_or(&0)
    }

    /// Evaluates the polynomial at `x` in `GF(p)` (Horner).
    pub fn eval(&self, x: u64, p: u64) -> u64 {
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = (crate::primes::mul_mod(acc, x, p) + c) % p;
        }
        acc
    }
}

/// `a + b` over GF(p).
pub fn add(a: &Poly, b: &Poly, p: u64) -> Poly {
    let n = a.coeffs.len().max(b.coeffs.len());
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let x = a.coeffs.get(i).copied().unwrap_or(0);
        let y = b.coeffs.get(i).copied().unwrap_or(0);
        out.push((x + y) % p);
    }
    Poly::from_coeffs(out)
}

/// `-a` over GF(p).
pub fn neg(a: &Poly, p: u64) -> Poly {
    Poly::from_coeffs(a.coeffs.iter().map(|&c| if c == 0 { 0 } else { p - c }).collect())
}

/// `a - b` over GF(p).
pub fn sub(a: &Poly, b: &Poly, p: u64) -> Poly {
    add(a, &neg(b, p), p)
}

/// `a · b` over GF(p) (schoolbook; degrees here are tiny).
pub fn mul(a: &Poly, b: &Poly, p: u64) -> Poly {
    if a.is_zero() || b.is_zero() {
        return Poly::zero();
    }
    let mut out = vec![0u64; a.coeffs.len() + b.coeffs.len() - 1];
    for (i, &x) in a.coeffs.iter().enumerate() {
        if x == 0 {
            continue;
        }
        for (j, &y) in b.coeffs.iter().enumerate() {
            out[i + j] = (out[i + j] + crate::primes::mul_mod(x, y, p)) % p;
        }
    }
    Poly::from_coeffs(out)
}

/// Division with remainder: returns `(quotient, remainder)` with
/// `a = q·b + r`, `deg r < deg b`. Panics if `b` is zero.
pub fn divmod(a: &Poly, b: &Poly, p: u64) -> (Poly, Poly) {
    assert!(!b.is_zero(), "polynomial division by zero");
    let db = b.degree().unwrap();
    let lead_inv = crate::primes::pow_mod(b.leading(), p - 2, p);
    let mut rem = a.coeffs.clone();
    let mut quot = vec![0u64; a.coeffs.len().saturating_sub(db)];
    while rem.len() > db {
        let dr = rem.len() - 1;
        let coef = crate::primes::mul_mod(*rem.last().unwrap(), lead_inv, p);
        if coef != 0 {
            quot[dr - db] = coef;
            for (i, &bc) in b.coeffs.iter().enumerate() {
                let idx = dr - db + i;
                let sub = crate::primes::mul_mod(coef, bc, p);
                rem[idx] = (rem[idx] + p - sub % p) % p;
            }
        }
        rem.pop();
        while rem.last() == Some(&0) {
            rem.pop();
        }
        // Re-extend quotient walk: loop continues from current rem length.
        if rem.len() <= db {
            break;
        }
    }
    (Poly::from_coeffs(quot), Poly::from_coeffs(rem))
}

/// Remainder of `a mod b` over GF(p).
pub fn rem(a: &Poly, b: &Poly, p: u64) -> Poly {
    divmod(a, b, p).1
}

/// Greatest common divisor (monic) over GF(p).
pub fn gcd(a: &Poly, b: &Poly, p: u64) -> Poly {
    let (mut x, mut y) = (a.clone(), b.clone());
    while !y.is_zero() {
        let r = rem(&x, &y, p);
        x = y;
        y = r;
    }
    // Normalize to monic.
    if x.is_zero() {
        return x;
    }
    let inv = crate::primes::pow_mod(x.leading(), p - 2, p);
    Poly::from_coeffs(x.coeffs.iter().map(|&c| crate::primes::mul_mod(c, inv, p)).collect())
}

/// Computes `x^(p^e) mod f` over GF(p) by repeated exponentiation.
fn frobenius_power(f: &Poly, p: u64, e: u32) -> Poly {
    // x^p mod f, then raise repeatedly: ((x^p)^p)^... e times.
    let mut cur = Poly::monomial(1);
    for _ in 0..e {
        cur = pow_mod_poly(&cur, p, f, p);
    }
    cur
}

/// Computes `base^e mod f` over GF(p).
fn pow_mod_poly(base: &Poly, e: u64, f: &Poly, p: u64) -> Poly {
    let mut result = Poly::one();
    let mut b = rem(base, f, p);
    let mut e = e;
    while e > 0 {
        if e & 1 == 1 {
            result = rem(&mul(&result, &b, p), f, p);
        }
        b = rem(&mul(&b, &b, p), f, p);
        e >>= 1;
    }
    result
}

/// Rabin irreducibility test: a monic polynomial `f` of degree `k` over
/// GF(p) is irreducible iff `x^(p^k) ≡ x (mod f)` and for every prime
/// divisor `d` of `k`, `gcd(x^(p^(k/d)) − x, f) = 1`.
pub fn is_irreducible(f: &Poly, p: u64) -> bool {
    let k = match f.degree() {
        Some(0) | None => return false,
        Some(k) => k as u32,
    };
    if k == 1 {
        return true;
    }
    let x = Poly::monomial(1);
    // x^(p^k) mod f must equal x mod f.
    if frobenius_power(f, p, k) != rem(&x, f, p) {
        return false;
    }
    // Prime divisors of k.
    let mut n = k;
    let mut divisors = Vec::new();
    let mut d = 2u32;
    while d * d <= n {
        if n % d == 0 {
            divisors.push(d);
            while n % d == 0 {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        divisors.push(n);
    }
    for &d in &divisors {
        let h = sub(&frobenius_power(f, p, k / d), &x, p);
        let g = gcd(&h, f, p);
        if g.degree() != Some(0) {
            return false;
        }
    }
    true
}

/// Finds the lexicographically-smallest monic irreducible polynomial of
/// degree `k` over GF(p) by exhaustive search over the `p^k` candidates.
///
/// Returns the coefficient vector low-to-high (length `k + 1`, last entry 1).
/// Panics only if no irreducible polynomial exists, which cannot happen
/// (there are `≈ p^k / k` monic irreducibles of degree `k`).
pub fn find_irreducible(p: u64, k: u32) -> Vec<u64> {
    assert!(k >= 1);
    let total = p.checked_pow(k).expect("field too large for search");
    for idx in 0..total {
        let mut coeffs = Vec::with_capacity(k as usize + 1);
        let mut x = idx;
        for _ in 0..k {
            coeffs.push(x % p);
            x /= p;
        }
        coeffs.push(1); // monic
        let f = Poly::from_coeffs(coeffs.clone());
        if is_irreducible(&f, p) {
            return coeffs;
        }
    }
    unreachable!("monic irreducible polynomials of degree {k} over GF({p}) always exist")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divmod_roundtrip() {
        let p = 7;
        let a = Poly::from_coeffs(vec![3, 0, 1, 5, 2]); // 2x⁴+5x³+x²+3
        let b = Poly::from_coeffs(vec![1, 2, 1]); // x²+2x+1
        let (q, r) = divmod(&a, &b, p);
        let back = add(&mul(&q, &b, p), &r, p);
        assert_eq!(back, a);
        assert!(r.degree().is_none_or(|d| d < 2));
    }

    #[test]
    fn known_irreducibles() {
        // x² + x + 1 is irreducible over GF(2); x² + 1 is not (x=1 is a root).
        assert!(is_irreducible(&Poly::from_coeffs(vec![1, 1, 1]), 2));
        assert!(!is_irreducible(&Poly::from_coeffs(vec![1, 0, 1]), 2));
        // x² + 1 is irreducible over GF(3) (no root: 0²,1²,2² = 0,1,1 ≠ 2).
        assert!(is_irreducible(&Poly::from_coeffs(vec![1, 0, 1]), 3));
        // x³ + x + 1 irreducible over GF(2).
        assert!(is_irreducible(&Poly::from_coeffs(vec![1, 1, 0, 1]), 2));
        // (x+1)² = x² + 2x + 1 reducible over GF(3).
        assert!(!is_irreducible(&Poly::from_coeffs(vec![1, 2, 1]), 3));
    }

    #[test]
    fn irreducible_has_no_roots_deg2_3() {
        for p in [2u64, 3, 5, 7, 11] {
            for k in [2u32, 3] {
                let f = Poly::from_coeffs(find_irreducible(p, k));
                assert_eq!(f.degree(), Some(k as usize));
                for x in 0..p {
                    assert_ne!(f.eval(x, p), 0, "root {x} in GF({p}), k={k}");
                }
            }
        }
    }

    #[test]
    fn irreducible_search_matches_bruteforce_factor_check() {
        // Degree-2 over GF(5): verify against a quadratic having no roots.
        let f = Poly::from_coeffs(find_irreducible(5, 2));
        let roots: Vec<u64> = (0..5).filter(|&x| f.eval(x, 5) == 0).collect();
        assert!(roots.is_empty());
    }

    #[test]
    fn gcd_basics() {
        let p = 5;
        // gcd((x+1)(x+2), (x+1)(x+3)) = x + 1.
        let a = mul(&Poly::from_coeffs(vec![1, 1]), &Poly::from_coeffs(vec![2, 1]), p);
        let b = mul(&Poly::from_coeffs(vec![1, 1]), &Poly::from_coeffs(vec![3, 1]), p);
        assert_eq!(gcd(&a, &b, p), Poly::from_coeffs(vec![1, 1]));
    }

    #[test]
    fn eval_horner() {
        let f = Poly::from_coeffs(vec![1, 2, 3]); // 3x² + 2x + 1
        assert_eq!(f.eval(2, 7), (3 * 4 + 2 * 2 + 1) % 7);
    }
}
