//! `(v, k, λ)`-designs, specialized to the `λ = 1` case the paper uses.
//!
//! A `(v, k, 1)`-design (Definition 1 in the paper) is a collection of
//! `k`-element blocks of a `v`-element point set such that every 2-element
//! subset of points lies in **exactly one** block. The design distribution
//! scheme maps blocks to working sets, so this exactly-once property is what
//! guarantees that every pair of elements is evaluated exactly once.

use std::collections::HashMap;

/// A block design over points `0..v` (0-based, unlike the paper's 1-based
/// `s₁…s_v`; the conversion is purely notational).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockDesign {
    v: u64,
    blocks: Vec<Vec<u64>>,
}

/// Outcome of [`BlockDesign::verify`]: why a structure fails to be a
/// `(v, k, 1)`-design (or the weaker "design-like" structure used after
/// truncation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignError {
    /// A block references a point `≥ v`.
    PointOutOfRange {
        /// Offending block index.
        block: usize,
        /// The out-of-range point.
        point: u64,
    },
    /// A block contains a repeated point.
    DuplicatePoint {
        /// Offending block index.
        block: usize,
        /// The repeated point.
        point: u64,
    },
    /// Some pair is covered zero times or more than once.
    PairCoverage {
        /// Smaller point of the pair.
        a: u64,
        /// Larger point of the pair.
        b: u64,
        /// Number of blocks containing the pair.
        count: u64,
    },
    /// Block sizes are not all `k` (strict designs only).
    BlockSize {
        /// Offending block index.
        block: usize,
        /// Actual size.
        size: usize,
        /// Expected size `k`.
        expected: usize,
    },
}

impl BlockDesign {
    /// Builds a design from raw blocks. Blocks are sorted internally; no
    /// validity check is performed (use [`BlockDesign::verify`]).
    pub fn new(v: u64, mut blocks: Vec<Vec<u64>>) -> BlockDesign {
        for b in &mut blocks {
            b.sort_unstable();
        }
        BlockDesign { v, blocks }
    }

    /// Number of points `v`.
    pub fn v(&self) -> u64 {
        self.v
    }

    /// Number of blocks `b`.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The blocks (each sorted ascending).
    pub fn blocks(&self) -> &[Vec<u64>] {
        &self.blocks
    }

    /// Block sizes `(min, max)`; `(0, 0)` for an empty design.
    pub fn block_size_range(&self) -> (usize, usize) {
        let min = self.blocks.iter().map(Vec::len).min().unwrap_or(0);
        let max = self.blocks.iter().map(Vec::len).max().unwrap_or(0);
        (min, max)
    }

    /// Replication number of each point: how many blocks contain it.
    pub fn replication_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.v as usize];
        for block in &self.blocks {
            for &p in block {
                counts[p as usize] += 1;
            }
        }
        counts
    }

    /// Index from point to the blocks containing it.
    pub fn point_to_blocks(&self) -> Vec<Vec<u32>> {
        let mut idx = vec![Vec::new(); self.v as usize];
        for (b, block) in self.blocks.iter().enumerate() {
            for &p in block {
                idx[p as usize].push(b as u32);
            }
        }
        idx
    }

    /// Verifies the *pairwise-balance* property: every unordered pair of
    /// points `0..v` is contained in exactly one block, points are in range,
    /// and no block repeats a point. Block sizes are **not** required to be
    /// uniform (the paper's truncated "design-like" structures have blocks of
    /// varying size).
    pub fn verify(&self) -> Result<(), DesignError> {
        let mut cover: HashMap<(u64, u64), u64> = HashMap::new();
        for (bi, block) in self.blocks.iter().enumerate() {
            for (i, &a) in block.iter().enumerate() {
                if a >= self.v {
                    return Err(DesignError::PointOutOfRange { block: bi, point: a });
                }
                if i > 0 && block[i - 1] == a {
                    return Err(DesignError::DuplicatePoint { block: bi, point: a });
                }
                for &b in &block[i + 1..] {
                    *cover.entry((a, b)).or_insert(0) += 1;
                }
            }
        }
        for a in 0..self.v {
            for b in a + 1..self.v {
                let c = cover.get(&(a, b)).copied().unwrap_or(0);
                if c != 1 {
                    return Err(DesignError::PairCoverage { a, b, count: c });
                }
            }
        }
        Ok(())
    }

    /// Verifies the strict `(v, k, 1)`-design property: pairwise balance
    /// *and* every block has exactly `k` points.
    pub fn verify_strict(&self, k: usize) -> Result<(), DesignError> {
        for (bi, block) in self.blocks.iter().enumerate() {
            if block.len() != k {
                return Err(DesignError::BlockSize { block: bi, size: block.len(), expected: k });
            }
        }
        self.verify()
    }

    /// True iff this is a projective plane of order `m`, i.e. an
    /// `(m² + m + 1, m + 1, 1)`-design (Definition 2 in the paper).
    pub fn is_projective_plane(&self) -> Option<u64> {
        let (min, max) = self.block_size_range();
        if min != max || min < 3 {
            return None;
        }
        let m = (min - 1) as u64;
        if self.v != m * m + m + 1 || self.blocks.len() as u64 != self.v {
            return None;
        }
        self.verify_strict(min).ok().map(|()| m)
    }

    /// Truncates the design to the first `v'` points (paper §5.3: "If
    /// `v < q̂`, then the elements `s_{v+1}, …, s_{q̂}` do not exist").
    ///
    /// Points `≥ v'` are removed from every block; blocks left with fewer
    /// than 2 points carry no pairs and are dropped (the paper notes blocks
    /// that shrink to one element "can therefore be dropped").
    pub fn truncate_to(&self, v_new: u64) -> BlockDesign {
        assert!(v_new <= self.v, "truncate_to can only shrink a design");
        let blocks = self
            .blocks
            .iter()
            .map(|b| b.iter().copied().filter(|&p| p < v_new).collect::<Vec<_>>())
            .filter(|b| b.len() >= 2)
            .collect();
        BlockDesign { v: v_new, blocks }
    }

    /// Total number of unordered pairs covered across all blocks (with
    /// multiplicity). For a valid design this equals `v(v−1)/2`.
    pub fn total_pairs(&self) -> u64 {
        self.blocks.iter().map(|b| (b.len() as u64) * (b.len() as u64 - 1) / 2).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fano plane as drawn in the paper's Figures 4 and 7 (1-based
    /// s₁…s₇ mapped to 0-based points).
    pub fn fano_from_paper() -> BlockDesign {
        // Figure 4: D₁={s1,s2,s3} D₂={s1,s4,s7} D₃={s1,s5,s6} D₄={s2,s4,s6}
        //           D₅={s2,s5,s7} D₆={s3,s4,s5} D₇={s3,s6,s7}
        BlockDesign::new(
            7,
            vec![
                vec![0, 1, 2],
                vec![0, 3, 6],
                vec![0, 4, 5],
                vec![1, 3, 5],
                vec![1, 4, 6],
                vec![2, 3, 4],
                vec![2, 5, 6],
            ],
        )
    }

    #[test]
    fn paper_figure4_is_a_731_design() {
        let fano = fano_from_paper();
        fano.verify_strict(3).unwrap();
        assert_eq!(fano.is_projective_plane(), Some(2));
        assert_eq!(fano.num_blocks(), 7);
        assert_eq!(fano.total_pairs(), 21); // 7·6/2
        assert!(fano.replication_counts().iter().all(|&r| r == 3)); // r = q+1
    }

    #[test]
    fn broken_coverage_detected() {
        // Swap one point: pair coverage breaks.
        let mut blocks = fano_from_paper().blocks().to_vec();
        blocks[0] = vec![0, 1, 3];
        let d = BlockDesign::new(7, blocks);
        assert!(matches!(d.verify(), Err(DesignError::PairCoverage { .. })));
    }

    #[test]
    fn out_of_range_detected() {
        let d = BlockDesign::new(3, vec![vec![0, 1], vec![0, 2], vec![1, 5]]);
        assert!(matches!(d.verify(), Err(DesignError::PointOutOfRange { point: 5, .. })));
    }

    #[test]
    fn duplicate_point_detected() {
        let d = BlockDesign::new(3, vec![vec![0, 0, 1]]);
        assert!(matches!(d.verify(), Err(DesignError::DuplicatePoint { point: 0, .. })));
    }

    #[test]
    fn wrong_block_size_detected() {
        let fano = fano_from_paper();
        assert!(matches!(fano.verify_strict(4), Err(DesignError::BlockSize { expected: 4, .. })));
    }

    #[test]
    fn truncation_preserves_pairwise_balance() {
        let fano = fano_from_paper();
        for v_new in 2..=7u64 {
            let t = fano.truncate_to(v_new);
            t.verify().unwrap_or_else(|e| panic!("v'={v_new}: {e:?}"));
            assert_eq!(t.total_pairs(), v_new * (v_new - 1) / 2);
        }
    }

    #[test]
    fn truncation_drops_tiny_blocks() {
        let fano = fano_from_paper();
        let t = fano.truncate_to(3);
        // Only D₁ = {0,1,2} retains ≥ 2 points... plus blocks covering
        // pairs (0,1),(0,2),(1,2) — exactly the 3-point block plus any
        // two-point leftovers. Verify no 0/1-point blocks survive.
        assert!(t.blocks().iter().all(|b| b.len() >= 2));
        t.verify().unwrap();
    }

    #[test]
    fn trivial_design_single_block() {
        // b = 1, D₁ = S is the paper's trivial solution.
        let d = BlockDesign::new(5, vec![vec![0, 1, 2, 3, 4]]);
        d.verify().unwrap();
        assert_eq!(d.total_pairs(), 10);
    }
}
