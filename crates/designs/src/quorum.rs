//! Difference covers and cyclic quorums (Kleinheksel–Somani, arXiv
//! 1608.05174).
//!
//! A **difference cover** of `Z_v` is a set `A` whose ordered differences
//! `a − b (mod v)` hit every residue. Its *development* — the `v` rotations
//! `B_t = { (a + t) mod v : a ∈ A }` — is a **cyclic quorum system**: for
//! every unordered pair `{x, y} ⊂ Z_v` some rotation contains both
//! elements, which is exactly the all-pairs property the quorum
//! distribution scheme in `pmr-core` exploits.
//!
//! Two constructions:
//!
//! * when `v = q² + q + 1` for a prime `q`, the [Singer](mod@crate::singer)
//!   perfect difference set is an **optimal** cover of size `q + 1 ≈ √v`;
//! * for general `v`, the classical two-block set
//!   `{0, …, r−1} ∪ {r, 2r, …}` with `r = ⌈√v⌉` covers every residue with
//!   `≈ 2√v` elements, and a greedy pruning pass removes the redundancy the
//!   generic construction leaves (typically landing near `1.4√v`, within a
//!   small constant of the `√v` counting lower bound `k(k−1) ≥ v−1`).

use crate::primes::{is_prime, isqrt, plane_size};
use crate::singer::singer_difference_set;

/// True iff every nonzero residue mod `v` occurs among the ordered
/// differences `a − b (mod v)` of distinct elements of `a`.
///
/// (`v = 1` has no nonzero residues, so any set — even the empty one — is
/// trivially a cover.)
pub fn is_difference_cover(a: &[u64], v: u64) -> bool {
    if v <= 1 {
        return true;
    }
    let mut seen = vec![false; v as usize];
    for &x in a {
        for &y in a {
            if x != y {
                seen[(((x + v) - y) % v) as usize] = true;
            }
        }
    }
    seen[1..].iter().all(|&c| c)
}

/// Builds a small difference cover of `Z_v`, sorted ascending.
///
/// Uses the optimal Singer set when `v = q² + q + 1` with `q` prime, the
/// pruned `⌈√v⌉`-construction otherwise. The result always satisfies
/// [`is_difference_cover`]; its size is the quorum size `k ≈ √v` of the
/// cyclic quorum system it generates.
pub fn difference_cover(v: u64) -> Vec<u64> {
    assert!(v >= 1, "difference cover needs a nonempty cyclic group");
    if v <= 2 {
        return (0..v).collect();
    }
    let q = isqrt(v);
    if plane_size(q) == v && is_prime(q) {
        return singer_difference_set(q);
    }

    // Two-block construction: any d ∈ [1, v) is d = a·r + s with s < r, so
    // d = (a+1)·r − (r − s) when s > 0 and d = a·r − 0 otherwise — both a
    // difference of a multiple of r and a residue below r.
    let r = isqrt(v - 1) + 1; // ⌈√v⌉
    let mut cover: Vec<u64> = (0..r).collect();
    let mut j = r;
    while j < v + r {
        cover.push(j % v);
        j += r;
    }
    cover.sort_unstable();
    cover.dedup();
    debug_assert!(is_difference_cover(&cover, v), "v={v}: construction must cover");

    // Greedy prune: drop any element whose removal keeps the property.
    let mut i = 0;
    while i < cover.len() && cover.len() > 1 {
        let mut trial = cover.clone();
        trial.remove(i);
        if is_difference_cover(&trial, v) {
            cover = trial; // retry the same index
        } else {
            i += 1;
        }
    }
    cover
}

/// The quorum size `k = |difference_cover(v)|` without keeping the cover.
pub fn difference_cover_size(v: u64) -> u64 {
    difference_cover(v).len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_small_v_exhaustively() {
        for v in 1..=200u64 {
            let a = difference_cover(v);
            assert!(is_difference_cover(&a, v), "v={v}: {a:?}");
            assert!(a.windows(2).all(|w| w[0] < w[1]), "v={v}: not sorted/dedup: {a:?}");
            assert!(a.iter().all(|&x| x < v), "v={v}: out of range: {a:?}");
        }
    }

    #[test]
    fn singer_route_is_optimal_for_plane_sizes() {
        // v = q² + q + 1, q prime ⇒ perfect difference set of size q + 1.
        for (v, k) in [(7u64, 3u64), (13, 4), (31, 6), (57, 8), (133, 12)] {
            assert_eq!(difference_cover(v).len() as u64, k, "v={v}");
        }
    }

    #[test]
    fn size_stays_near_sqrt_v() {
        for v in [10u64, 50, 100, 500, 1000, 2048, 5000] {
            let k = difference_cover(v).len() as u64;
            // Counting lower bound: k(k−1) ordered differences must cover
            // the v−1 nonzero residues.
            assert!(k * (k - 1) >= v - 1, "v={v} k={k} below counting bound");
            let sqrt_v = (v as f64).sqrt();
            assert!((k as f64) <= 2.0 * sqrt_v + 2.0, "v={v} k={k} vs √v={sqrt_v}");
        }
    }

    #[test]
    fn rejects_non_covers() {
        assert!(!is_difference_cover(&[0, 1, 2], 7)); // covers ±1, ±2; misses 3, 4
        assert!(!is_difference_cover(&[0], 2));
        assert!(is_difference_cover(&[0, 1, 3], 7)); // the Fano set
        assert!(is_difference_cover(&[], 1)); // trivially
    }

    #[test]
    fn tiny_groups() {
        assert_eq!(difference_cover(1), vec![0]);
        assert_eq!(difference_cover(2), vec![0, 1]);
        let a3 = difference_cover(3);
        assert_eq!(a3.len(), 2, "{a3:?}");
    }
}
