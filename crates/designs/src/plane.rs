//! Projective-plane constructions.
//!
//! Two independent constructions of a `(q² + q + 1, q + 1, 1)`-design — a
//! finite projective plane of order `q` (paper Definition 2, Theorem 1):
//!
//! * [`theorem2`] — the paper's direct construction (Theorem 2, after Lee,
//!   Kang & Choi): pure modular arithmetic, valid for **prime** `q`.
//! * [`pg2`] — the classical `PG(2, q)` construction over `GF(q)`: points
//!   are 1-dimensional subspaces of `GF(q)³`, lines are kernels of linear
//!   forms; valid for **every prime power** `q`.
//!
//! [`plane`] dispatches to the paper's construction for primes and to
//! `PG(2, q)` for higher prime powers, and [`truncated_plane`] produces the
//! paper's "design-like" structure for arbitrary `v` (§5.3).

use crate::design::BlockDesign;
use crate::gf::Gf;
use crate::primes::{is_prime, plane_size, prime_power, smallest_plane_order};

/// The paper's Theorem 2 construction (0-based points and blocks).
///
/// Rules (translated from the paper's 1-based `s_j`, `D_i`):
/// 1. block 0 = `{0, …, q}`;
/// 2. blocks `1 ≤ i ≤ q` = `{0} ∪ {q·i + 1, …, q·i + q}`;
/// 3. blocks `q+1 ≤ i ≤ q²+q`: with `t = i − 1`, `h = ⌊t/q⌋ − 1`,
///    `l = t mod q`, block = `{h+1} ∪ {q(m+1) + ((l − h·m) mod q) + 1}` for
///    `0 ≤ m ≤ q−1`.
///
/// Panics if `q` is not prime (rule 3 requires `ℤ_q` to be a field; for
/// prime powers use [`pg2`]).
pub fn theorem2(q: u64) -> BlockDesign {
    assert!(
        is_prime(q),
        "theorem2 construction requires prime q (got {q}); use pg2 for prime powers"
    );
    let qhat = plane_size(q);
    let mut blocks = Vec::with_capacity(qhat as usize);

    // Rule 1.
    blocks.push((0..=q).collect::<Vec<u64>>());

    // Rule 2.
    for i in 1..=q {
        let mut b = Vec::with_capacity(q as usize + 1);
        b.push(0);
        b.extend(q * i + 1..=q * i + q);
        blocks.push(b);
    }

    // Rule 3.
    for i in q + 1..qhat {
        let t = i - 1;
        let h = t / q - 1;
        let l = t % q;
        let mut b = Vec::with_capacity(q as usize + 1);
        b.push(h + 1);
        for m in 0..q {
            // (l − h·m) mod q, computed without going negative.
            let hm = (h % q) * (m % q) % q;
            let off = (l + q - hm % q) % q;
            b.push(q * (m + 1) + off + 1);
        }
        blocks.push(b);
    }

    BlockDesign::new(qhat, blocks)
}

/// The classical `PG(2, q)` construction over `GF(q)`.
///
/// Points are the `q² + q + 1` normalized nonzero triples of `GF(q)³`
/// (first nonzero coordinate scaled to 1); a line with normalized
/// coefficients `(a, b, c)` contains the points `(x, y, z)` with
/// `ax + by + cz = 0`. Point ids:
/// `(1, y, z) ↦ y·q + z`, `(0, 1, z) ↦ q² + z`, `(0, 0, 1) ↦ q² + q`.
///
/// Works for every prime power `q` (panics otherwise, via [`Gf::new`]).
pub fn pg2(q: u64) -> BlockDesign {
    let gf = Gf::new(q);
    let qhat = plane_size(q);

    let point_id = |x: u64, y: u64, z: u64| -> u64 {
        // Normalize: scale so the first nonzero coordinate is 1.
        let (x, y, z) = if x != 0 {
            let inv = gf.inv(x);
            (1, gf.mul(y, inv), gf.mul(z, inv))
        } else if y != 0 {
            let inv = gf.inv(y);
            (0, 1, gf.mul(z, inv))
        } else {
            debug_assert!(z != 0, "zero vector is not a projective point");
            (0, 0, 1)
        };
        match (x, y) {
            (1, _) => y * q + z,
            (0, 1) => q * q + z,
            _ => q * q + q,
        }
    };

    // Enumerate normalized line-coefficient triples exactly like points, and
    // for each line generate its q + 1 points from a basis of its kernel.
    let mut lines = Vec::with_capacity(qhat as usize);
    let mut coefs = Vec::with_capacity(qhat as usize);
    for y in 0..q {
        for z in 0..q {
            coefs.push((1, y, z));
        }
    }
    for z in 0..q {
        coefs.push((0, 1, z));
    }
    coefs.push((0, 0, 1));

    for (a, b, c) in coefs {
        // Two independent solutions (u, w) of a·x + b·y + c·z = 0.
        let (u, w) = if c != 0 {
            let cinv = gf.inv(c);
            // (1, 0, −a/c) and (0, 1, −b/c).
            ((1, 0, gf.neg(gf.mul(a, cinv))), (0, 1, gf.neg(gf.mul(b, cinv))))
        } else if b != 0 {
            let binv = gf.inv(b);
            // (1, −a/b, 0) and (0, 0, 1).
            ((1, gf.neg(gf.mul(a, binv)), 0), (0, 0, 1))
        } else {
            // a ≠ 0, b = c = 0: x = 0 plane.
            ((0, 1, 0), (0, 0, 1))
        };
        let mut block = Vec::with_capacity(q as usize + 1);
        // The q + 1 subspaces of span{u, w}: u + t·w for all t, plus w.
        for t in 0..q {
            let x = gf.add(u.0, gf.mul(t, w.0));
            let y = gf.add(u.1, gf.mul(t, w.1));
            let z = gf.add(u.2, gf.mul(t, w.2));
            block.push(point_id(x, y, z));
        }
        block.push(point_id(w.0, w.1, w.2));
        lines.push(block);
    }

    BlockDesign::new(qhat, lines)
}

/// Builds a projective plane of order `q` for any prime power `q`:
/// the paper's Theorem 2 construction when `q` is prime, `PG(2, q)`
/// otherwise. Panics if `q` is not a prime power.
pub fn plane(q: u64) -> BlockDesign {
    match prime_power(q) {
        Some((_, 1)) => theorem2(q),
        Some(_) => pg2(q),
        None => panic!("no projective plane construction for non-prime-power order {q}"),
    }
}

/// The paper's §5.3 structure for an arbitrary dataset size `v`: the plane
/// of the smallest prime power `q` with `q² + q + 1 ≥ v`, truncated to `v`
/// points (blocks that shrink below 2 points are dropped).
///
/// Returns the design together with the order `q` used.
pub fn truncated_plane(v: u64) -> (BlockDesign, u64) {
    assert!(v >= 2, "need at least two elements to form pairs (got v={v})");
    let q = smallest_plane_order(v);
    let full = plane(q);
    let truncated = if v < full.v() { full.truncate_to(v) } else { full };
    (truncated, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem2_fano() {
        let d = theorem2(2);
        assert_eq!(d.is_projective_plane(), Some(2));
        assert_eq!(d.num_blocks(), 7);
    }

    #[test]
    fn theorem2_valid_for_small_primes() {
        for q in [2u64, 3, 5, 7, 11, 13] {
            let d = theorem2(q);
            assert_eq!(d.is_projective_plane(), Some(q), "Theorem 2 construction failed for q={q}");
            // Every point lies on exactly q + 1 lines (replication r = k).
            assert!(d.replication_counts().iter().all(|&r| r == q + 1));
        }
    }

    #[test]
    fn pg2_valid_for_prime_powers() {
        for q in [2u64, 3, 4, 5, 7, 8, 9] {
            let d = pg2(q);
            assert_eq!(d.is_projective_plane(), Some(q), "PG(2,{q}) invalid");
            assert!(d.replication_counts().iter().all(|&r| r == q + 1));
        }
    }

    #[test]
    fn both_constructions_agree_on_parameters() {
        for q in [2u64, 3, 5, 7] {
            let a = theorem2(q);
            let b = pg2(q);
            assert_eq!(a.v(), b.v());
            assert_eq!(a.num_blocks(), b.num_blocks());
            assert_eq!(a.block_size_range(), b.block_size_range());
            // (The designs are isomorphic but need not be identical.)
        }
    }

    #[test]
    #[should_panic(expected = "requires prime q")]
    fn theorem2_rejects_prime_powers() {
        let _ = theorem2(4);
    }

    #[test]
    #[should_panic(expected = "non-prime-power")]
    fn plane_rejects_order_6() {
        let _ = plane(6); // no projective plane of order 6 exists (Tarry)
    }

    #[test]
    fn truncated_plane_covers_all_pairs() {
        for v in [2u64, 3, 5, 7, 8, 10, 13, 14, 20, 21, 25, 31, 40, 57, 60, 91, 100] {
            let (d, q) = truncated_plane(v);
            assert_eq!(d.v(), v);
            assert_eq!(q, smallest_plane_order(v));
            d.verify().unwrap_or_else(|e| panic!("v={v} q={q}: {e:?}"));
            assert_eq!(d.total_pairs(), v * (v - 1) / 2);
            // No block exceeds q + 1 points.
            let (_, max) = d.block_size_range();
            assert!(max as u64 <= q + 1);
        }
    }

    #[test]
    fn truncated_plane_exact_when_v_is_qhat() {
        let (d, q) = truncated_plane(13); // 13 = 3² + 3 + 1
        assert_eq!(q, 3);
        assert_eq!(d.is_projective_plane(), Some(3));
    }

    #[test]
    fn paper_example_v_10000() {
        // §5.3: v = 10,000 ⇒ q = 101, q̂ = 10,303; the first q+1 = 102
        // working sets are "dominated by the following 10,201 working sets".
        let q = smallest_plane_order(10_000);
        assert_eq!(q, 101);
        assert_eq!(plane_size(q), 10_303);
        assert_eq!(plane_size(q) - (q + 1), 10_201);
    }
}
