//! Singer difference-set construction of projective planes.
//!
//! A third, independent route to the `(q² + q + 1, q + 1, 1)`-designs the
//! design scheme needs (besides the paper's Theorem 2 and classical
//! `PG(2, q)`), used to cross-validate the other constructions:
//!
//! The multiplicative group of `GF(q³)` modulo `GF(q)*` is cyclic of order
//! `q̂ = q² + q + 1` and acts regularly on the points of `PG(2, q)` (a
//! *Singer cycle*). Fixing the line `{degree ≤ 1 polynomials}` and a
//! generator `g` of `GF(q³)*`, the index set
//! `D = { i ∈ [0, q̂) : coeff₂(gⁱ) = 0 }` is a **perfect difference set**:
//! every nonzero residue mod `q̂` arises exactly once as a difference of two
//! elements of `D`. Its translates `D + t (mod q̂)` are the lines of a
//! projective plane of order `q`.
//!
//! Implemented for prime `q` (the `GF(q)`-subfield of `GF(q³)` is then the
//! base-`p` digit structure of our packed representation).

use crate::design::BlockDesign;
use crate::gf::Gf;
use crate::primes::{is_prime, plane_size};

/// Computes the Singer perfect difference set for prime `q`: `q + 1`
/// residues mod `q̂ = q² + q + 1`, sorted ascending.
///
/// Panics if `q` is not prime.
pub fn singer_difference_set(q: u64) -> Vec<u64> {
    assert!(is_prime(q), "singer construction implemented for prime q (got {q})");
    let qhat = plane_size(q);
    let gf = Gf::new(q * q * q);
    let g = gf.generator();
    // coeff₂ of the packed polynomial representation c₀ + c₁·q + c₂·q².
    let coeff2 = |x: u64| x / (q * q);
    let mut d = Vec::with_capacity(q as usize + 1);
    let mut x = 1u64; // g⁰
    for i in 0..qhat {
        if coeff2(x) == 0 {
            d.push(i);
        }
        x = gf.mul(x, g);
    }
    debug_assert_eq!(d.len() as u64, q + 1, "Singer set must have q+1 elements");
    d
}

/// True iff `d` is a perfect difference set mod `v`: every nonzero residue
/// occurs exactly once among the ordered differences `dᵢ − dⱼ (mod v)`.
pub fn is_perfect_difference_set(d: &[u64], v: u64) -> bool {
    let mut seen = vec![0u32; v as usize];
    for &a in d {
        for &b in d {
            if a != b {
                let diff = ((a + v) - b) % v;
                seen[diff as usize] += 1;
            }
        }
    }
    seen[0] == 0 && seen[1..].iter().all(|&c| c == 1)
}

/// Builds the projective plane of prime order `q` as the *development* of
/// the Singer difference set: block `t` is `{ (d + t) mod q̂ : d ∈ D }`.
pub fn singer(q: u64) -> BlockDesign {
    let qhat = plane_size(q);
    let d = singer_difference_set(q);
    let blocks =
        (0..qhat).map(|t| d.iter().map(|&x| (x + t) % qhat).collect::<Vec<u64>>()).collect();
    BlockDesign::new(qhat, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::theorem2;

    #[test]
    fn fano_difference_set() {
        // q = 2: the unique (7, 3, 1) perfect difference set up to
        // translation/multiplication is {0, 1, 3} (or an equivalent).
        let d = singer_difference_set(2);
        assert_eq!(d.len(), 3);
        assert!(is_perfect_difference_set(&d, 7), "{d:?}");
    }

    #[test]
    fn difference_sets_are_perfect_for_small_primes() {
        for q in [2u64, 3, 5, 7, 11, 13] {
            let d = singer_difference_set(q);
            assert_eq!(d.len() as u64, q + 1, "q={q}");
            assert!(is_perfect_difference_set(&d, plane_size(q)), "q={q}: {d:?}");
        }
    }

    #[test]
    fn singer_planes_are_valid() {
        for q in [2u64, 3, 5, 7, 11] {
            let plane = singer(q);
            assert_eq!(plane.is_projective_plane(), Some(q), "q={q}");
        }
    }

    #[test]
    fn singer_agrees_with_theorem2_on_parameters() {
        for q in [2u64, 3, 5, 7] {
            let a = singer(q);
            let b = theorem2(q);
            assert_eq!(a.v(), b.v());
            assert_eq!(a.num_blocks(), b.num_blocks());
            assert_eq!(a.block_size_range(), b.block_size_range());
            assert_eq!(a.replication_counts(), b.replication_counts());
        }
    }

    #[test]
    fn known_non_difference_sets_rejected() {
        assert!(!is_perfect_difference_set(&[0, 1, 2], 7)); // diff 1 twice
        assert!(!is_perfect_difference_set(&[0, 1, 3], 8)); // wrong modulus
        assert!(is_perfect_difference_set(&[0, 1, 3], 7)); // the Fano set
    }
}
