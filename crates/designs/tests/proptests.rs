//! Property-based tests for the combinatorial-design substrate.

use pmr_designs::design::BlockDesign;
use pmr_designs::gf::Gf;
use pmr_designs::plane::{pg2, theorem2, truncated_plane};
use pmr_designs::poly::{self, Poly};
use pmr_designs::primes::{
    ikroot, is_prime, is_prime_power, isqrt, plane_size, prime_power, smallest_plane_order,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn isqrt_is_exact(n in any::<u64>()) {
        let r = isqrt(n);
        prop_assert!((r as u128) * (r as u128) <= n as u128);
        prop_assert!(((r + 1) as u128) * ((r + 1) as u128) > n as u128);
    }

    #[test]
    fn ikroot_is_exact(n in any::<u64>(), k in 1u32..8) {
        let r = ikroot(n, k);
        let pow = |b: u64| (0..k).try_fold(1u128, |a, _| {
            let v = a * b as u128;
            if v > u64::MAX as u128 { None } else { Some(v) }
        });
        prop_assert!(pow(r).is_some_and(|p| p <= n as u128));
        prop_assert!(pow(r + 1).is_none_or(|p| p > n as u128));
    }

    #[test]
    fn prime_power_roundtrip(p in prop::sample::select(vec![2u64, 3, 5, 7, 11, 13, 17]), k in 1u32..6) {
        let n = p.pow(k);
        prop_assert_eq!(prime_power(n), Some((p, k)));
        prop_assert!(is_prime_power(n));
    }

    #[test]
    fn products_of_two_distinct_primes_are_not_prime_powers(
        a in prop::sample::select(vec![2u64, 3, 5, 7, 11]),
        b in prop::sample::select(vec![13u64, 17, 19, 23, 29]),
    ) {
        prop_assert!(!is_prime_power(a * b));
    }

    #[test]
    fn smallest_plane_order_is_minimal_prime_power(v in 2u64..50_000) {
        let q = smallest_plane_order(v);
        prop_assert!(is_prime_power(q));
        prop_assert!(plane_size(q) >= v);
        // Minimality: q-1 downwards until the previous prime power must be
        // too small. Check just the previous prime power.
        let mut prev = q - 1;
        while prev >= 2 && !is_prime_power(prev) {
            prev -= 1;
        }
        if prev >= 2 {
            prop_assert!(plane_size(prev) < v);
        }
    }

    #[test]
    fn field_inverse_roundtrip(q in prop::sample::select(vec![3u64, 4, 5, 7, 8, 9, 11, 16, 25, 27]),
                               a in 1u64..1000) {
        let gf = Gf::new(q);
        let a = 1 + a % (q - 1); // nonzero element
        prop_assert_eq!(gf.mul(a, gf.inv(a)), 1);
        prop_assert_eq!(gf.add(a, gf.neg(a)), 0);
    }

    #[test]
    fn field_distributivity(q in prop::sample::select(vec![5u64, 8, 9, 13]),
                            a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let gf = Gf::new(q);
        let (a, b, c) = (a % q, b % q, c % q);
        prop_assert_eq!(gf.mul(a, gf.add(b, c)), gf.add(gf.mul(a, b), gf.mul(a, c)));
    }

    #[test]
    fn poly_divmod_invariant(
        a in prop::collection::vec(0u64..7, 0..10),
        b in prop::collection::vec(0u64..7, 1..6),
    ) {
        let p = 7u64;
        let pa = Poly::from_coeffs(a);
        let pb = Poly::from_coeffs(b);
        prop_assume!(!pb.is_zero());
        let (q, r) = poly::divmod(&pa, &pb, p);
        let back = poly::add(&poly::mul(&q, &pb, p), &r, p);
        prop_assert_eq!(back, pa);
        if let (Some(dr), Some(db)) = (r.degree(), pb.degree()) {
            prop_assert!(dr < db);
        }
    }

    #[test]
    fn truncated_plane_every_pair_exactly_once(v in 2u64..200) {
        let (d, _q) = truncated_plane(v);
        prop_assert!(d.verify().is_ok());
        prop_assert_eq!(d.total_pairs(), v * (v - 1) / 2);
    }

    #[test]
    fn truncation_of_any_plane_stays_pairwise_balanced(
        q in prop::sample::select(vec![2u64, 3, 4, 5, 7]),
        frac in 0.3f64..1.0,
    ) {
        let full = if is_prime(q) { theorem2(q) } else { pg2(q) };
        let v_new = ((full.v() as f64 * frac) as u64).max(2);
        let t = full.truncate_to(v_new);
        prop_assert!(t.verify().is_ok());
        prop_assert_eq!(t.total_pairs(), v_new * (v_new - 1) / 2);
    }

    #[test]
    fn replication_counts_sum_to_block_sizes(v in 2u64..150) {
        let (d, _) = truncated_plane(v);
        let total_from_points: u64 = d.replication_counts().iter().sum();
        let total_from_blocks: u64 = d.blocks().iter().map(|b| b.len() as u64).sum();
        prop_assert_eq!(total_from_points, total_from_blocks);
    }
}

// A design built from random garbage blocks should (almost) never verify;
// more importantly, verify() must never panic on arbitrary input.
proptest! {
    #[test]
    fn verify_never_panics_on_arbitrary_blocks(
        v in 2u64..20,
        blocks in prop::collection::vec(prop::collection::vec(0u64..25, 0..6), 0..10),
    ) {
        let d = BlockDesign::new(v, blocks);
        let _ = d.verify(); // may be Ok or Err; must not panic
    }
}
