//! Property-based tests for the cluster substrate.

use bytes::Bytes;
use pmr_cluster::{Cluster, ClusterConfig, Dfs, MemoryGauge, NetworkModel, TrafficAccountant};
use proptest::prelude::*;

proptest! {
    #[test]
    fn dfs_roundtrips_arbitrary_bytes(
        data in prop::collection::vec(any::<u8>(), 0..2000),
        block_size in 1u64..256,
        nodes in 1usize..6,
        replication in 1usize..4,
    ) {
        let dfs = Dfs::new(nodes, block_size, replication);
        dfs.create("f", Bytes::from(data.clone())).unwrap();
        prop_assert_eq!(dfs.read("f").unwrap(), Bytes::from(data.clone()));
        prop_assert_eq!(dfs.len("f").unwrap(), data.len() as u64);
    }

    #[test]
    fn dfs_ranged_reads_match_slices(
        data in prop::collection::vec(any::<u8>(), 1..1000),
        block_size in 1u64..128,
        cuts in prop::collection::vec(any::<u16>(), 1..8),
    ) {
        let dfs = Dfs::new(3, block_size, 2);
        dfs.create("f", Bytes::from(data.clone())).unwrap();
        let t = TrafficAccountant::new();
        let m = NetworkModel::default();
        for c in cuts {
            let off = c as u64 % data.len() as u64;
            let len = (data.len() as u64 - off).min(1 + c as u64 % 64);
            let got = dfs
                .read_range_from("f", off, len, pmr_cluster::NodeId(0), &t, &m)
                .unwrap();
            prop_assert_eq!(&got[..], &data[off as usize..(off + len) as usize]);
        }
    }

    #[test]
    fn dfs_splits_tile_exactly(
        len in 1usize..5000,
        block_size in 1u64..512,
        desired in 1usize..12,
    ) {
        let dfs = Dfs::new(4, block_size, 2);
        dfs.create("f", Bytes::from(vec![1u8; len])).unwrap();
        let splits = dfs.splits("f", desired).unwrap();
        let mut pos = 0u64;
        for s in &splits {
            prop_assert_eq!(s.offset, pos);
            prop_assert!(s.len > 0);
            prop_assert!(!s.preferred_nodes.is_empty());
            pos += s.len;
        }
        prop_assert_eq!(pos, len as u64);
    }

    #[test]
    fn memory_gauge_conserves(ops in prop::collection::vec((any::<bool>(), 1u64..1000), 1..100)) {
        let g = MemoryGauge::unlimited();
        let mut live: Vec<u64> = Vec::new();
        let mut expected = 0u64;
        for (release, bytes) in ops {
            if release && !live.is_empty() {
                let b = live.pop().unwrap();
                g.release(b);
                expected -= b;
            } else {
                g.try_reserve(bytes).unwrap();
                live.push(bytes);
                expected += bytes;
            }
            prop_assert_eq!(g.used(), expected);
            prop_assert!(g.peak() >= g.used());
        }
    }

    #[test]
    fn traffic_totals_are_additive(
        transfers in prop::collection::vec((0u32..4, 0u32..4, 0u64..10_000), 0..50),
    ) {
        let acc = TrafficAccountant::new();
        let m = NetworkModel::default();
        let mut remote = 0u64;
        let mut local = 0u64;
        for (src, dst, bytes) in transfers {
            acc.record(&m, pmr_cluster::NodeId(src), pmr_cluster::NodeId(dst), bytes);
            if src == dst {
                local += bytes;
            } else {
                remote += bytes;
            }
        }
        prop_assert_eq!(acc.remote_bytes(), remote);
        prop_assert_eq!(acc.local_bytes(), local);
    }

    #[test]
    fn node_storage_ledger_balances(
        files in prop::collection::vec((0u8..8, 0usize..200), 1..40),
    ) {
        let cluster = Cluster::new(ClusterConfig::with_nodes(1));
        let node = cluster.node(pmr_cluster::NodeId(0));
        let mut expect: std::collections::HashMap<u8, usize> = Default::default();
        for (name, size) in files {
            node.write_local(&format!("f{name}"), Bytes::from(vec![0u8; size])).unwrap();
            expect.insert(name, size);
        }
        let total: usize = expect.values().sum();
        prop_assert_eq!(node.storage_used(), total as u64);
        for name in expect.keys() {
            node.delete_local(&format!("f{name}"));
        }
        prop_assert_eq!(node.storage_used(), 0);
    }
}
