//! Regression: a missing `pmr-worker` binary must surface as a typed
//! [`ClusterError::Transport`] — never a panic — from both the raw
//! transport and `Cluster::try_new`.
//!
//! This lives in its own integration-test file (= its own OS process) so
//! the `PMR_WORKER_BIN` override cannot leak into the spawn tests that
//! rely on the default worker-binary lookup.

use pmr_cluster::transport::MultiProcessTransport;
use pmr_cluster::{Cluster, ClusterConfig, ClusterError, SocketMode, TransportKind};

#[test]
fn missing_worker_binary_is_a_typed_transport_error() {
    std::env::set_var("PMR_WORKER_BIN", "/nonexistent/pmr-worker-gone");

    let err = MultiProcessTransport::spawn(2, SocketMode::Uds)
        .err()
        .expect("spawn must fail without a worker binary");
    match &err {
        ClusterError::Transport(msg) => {
            assert!(msg.contains("PMR_WORKER_BIN"), "unexpected message: {msg}");
            assert!(msg.contains("pmr-worker-gone"), "unexpected message: {msg}");
        }
        other => panic!("expected ClusterError::Transport, got {other:?}"),
    }

    // The same failure propagates through the fallible cluster
    // constructor instead of panicking.
    let config =
        ClusterConfig::with_nodes(2).transport(TransportKind::Process { socket: SocketMode::Uds });
    match Cluster::try_new(config) {
        Err(ClusterError::Transport(msg)) => {
            assert!(msg.contains("PMR_WORKER_BIN"), "unexpected message: {msg}");
        }
        Ok(_) => panic!("Cluster::try_new must fail without a worker binary"),
        Err(other) => panic!("expected ClusterError::Transport, got {other:?}"),
    }

    std::env::remove_var("PMR_WORKER_BIN");
}
