//! End-to-end tests of the multi-process transport: real `pmr-worker`
//! processes, real sockets, real SIGKILL. These exercise the transport
//! directly and through a full [`Cluster`]; the engine-level parity
//! matrix lives in the workspace-root `multiprocess` integration test.

use bytes::Bytes;
use pmr_cluster::transport::MultiProcessTransport;
use pmr_cluster::{
    Cluster, ClusterConfig, ClusterError, NodeId, SocketMode, Transport, TransportKind,
};

#[test]
fn uds_roundtrip_counts_wire_bytes() {
    let t = MultiProcessTransport::spawn(2, SocketMode::Uds).expect("spawn workers");
    assert_eq!(t.num_nodes(), 2);
    assert!(t.is_distributed());
    assert_eq!(t.name(), "process");

    let s0 = t.store(NodeId(0));
    s0.put("mr/1/m/0/p/3", Bytes::from_static(b"partition-payload")).unwrap();
    assert_eq!(s0.get("mr/1/m/0/p/3").unwrap(), Bytes::from_static(b"partition-payload"));
    assert!(matches!(s0.get("mr/1/m/0/p/9"), Err(ClusterError::NoSuchFile(_))));
    s0.remove("mr/1/m/0/p/3").unwrap();
    assert!(s0.get("mr/1/m/0/p/3").is_err());

    // The payload crossed the socket twice: once as a map-output put,
    // once as a shuffle get.
    let snap = t.wire_snapshot();
    assert_eq!(snap.map_output_bytes, 17);
    assert_eq!(snap.shuffle_bytes, 17);
    assert!(snap.frames >= 6, "put+get+remove, 2 frames each");

    // Both workers are real OS processes.
    let workers = t.workers();
    assert_eq!(workers.len(), 2);
    for w in &workers {
        assert!(w.alive);
        assert!(w.pid > 0);
    }
}

#[test]
fn tcp_fallback_roundtrip() {
    let t = MultiProcessTransport::spawn(1, SocketMode::Tcp).expect("spawn workers over tcp");
    let s = t.store(NodeId(0));
    s.put("f", Bytes::from_static(b"over tcp")).unwrap();
    assert_eq!(s.get("f").unwrap(), Bytes::from_static(b"over tcp"));
    s.remove_prefix("").unwrap();
    assert!(s.get("f").is_err());
}

#[test]
fn sigkill_is_node_death_and_spares_other_workers() {
    let t = MultiProcessTransport::spawn(2, SocketMode::Uds).expect("spawn workers");
    let victim = t.store(NodeId(1));
    victim.put("x", Bytes::from_static(b"doomed")).unwrap();
    let pid = victim.pid().unwrap();
    victim.kill();
    assert!(!victim.is_alive(), "killed worker is reaped");
    assert!(matches!(victim.get("x"), Err(ClusterError::NodeDead(NodeId(1)))));
    assert!(
        !std::path::Path::new(&format!("/proc/{pid}")).exists()
            || std::fs::read_to_string(format!("/proc/{pid}/stat"))
                .map(|s| s.contains(") Z "))
                .unwrap_or(true),
        "worker process {pid} is gone (or at most a reaped zombie entry)"
    );

    // The other worker is unaffected.
    let survivor = t.store(NodeId(0));
    survivor.put("y", Bytes::from_static(b"alive")).unwrap();
    assert_eq!(survivor.get("y").unwrap(), Bytes::from_static(b"alive"));
    let table = t.workers();
    assert!(!table[1].alive);
    assert!(table[0].alive);
}

#[test]
fn cluster_runs_on_process_transport() {
    let config =
        ClusterConfig::with_nodes(3).transport(TransportKind::Process { socket: SocketMode::Uds });
    let c = Cluster::try_new(config).expect("cluster over worker processes");
    assert!(c.is_distributed());
    assert_eq!(c.workers().len(), 3);

    // Node-local files round-trip through the worker, and the ledger
    // keeps charging exactly as in-process.
    let n = c.node(NodeId(0));
    n.write_local("mr/1/m/0/p/0", Bytes::from(vec![7u8; 100])).unwrap();
    assert_eq!(n.storage_used(), 100);
    assert_eq!(n.read_local("mr/1/m/0/p/0").unwrap(), Bytes::from(vec![7u8; 100]));

    // DFS block payloads live on the workers too (the `dfs` wire class).
    c.dfs().create("input", Bytes::from(vec![9u8; 4096])).unwrap();
    assert_eq!(c.dfs().read("input").unwrap(), Bytes::from(vec![9u8; 4096]));
    let snap = c.wire_snapshot();
    assert!(snap.dfs_bytes >= 4096 * 2, "replicated creation crossed the wire");
    assert_eq!(snap.map_output_bytes, 100);

    // Crashing a node SIGKILLs its real worker process; the cluster
    // survives, and DFS data is re-replicated from surviving workers.
    assert!(c.crash_node(NodeId(0)));
    let table = c.workers();
    assert!(!table[0].alive);
    assert!(table[1].alive && table[2].alive);
    assert!(matches!(n.read_local("mr/1/m/0/p/0"), Err(ClusterError::NodeDead(NodeId(0)))));
    assert_eq!(c.dfs().read("input").unwrap(), Bytes::from(vec![9u8; 4096]));
}

#[test]
fn seed_workers_ships_once_per_live_worker() {
    let config =
        ClusterConfig::with_nodes(2).transport(TransportKind::Process { socket: SocketMode::Uds });
    let c = Cluster::try_new(config).expect("cluster over worker processes");
    let payload = Bytes::from(vec![5u8; 1000]);
    c.seed_workers("seed/dataset", &payload).unwrap();
    let snap = c.wire_snapshot();
    assert_eq!(snap.seed_bytes, 2000, "one copy per worker");
    // Seeding is unledgered: nothing counts as intermediate data.
    assert_eq!(c.intermediate_bytes(), 0);
    // Workers can serve the seed back.
    assert_eq!(c.transport().store(NodeId(1)).get("seed/dataset").unwrap(), payload);
}

#[test]
fn in_process_cluster_reports_no_wire_traffic() {
    let c = Cluster::new(ClusterConfig::with_nodes(2));
    assert!(!c.is_distributed());
    c.node(NodeId(0)).write_local("f", Bytes::from(vec![1u8; 64])).unwrap();
    c.dfs().create("input", Bytes::from(vec![2u8; 256])).unwrap();
    let snap = c.wire_snapshot();
    assert_eq!(snap.total_bytes(), 0);
    assert_eq!(snap.frames, 0);
    assert!(c.workers().is_empty());
}
