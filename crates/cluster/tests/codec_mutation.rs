//! Mutation tests for the framed codecs (transport-hardening satellite):
//! truncated, bit-flipped, or entirely arbitrary byte streams must come
//! back as `CodecError`s or clean decodes — never a panic, never a read
//! past the buffer, never an allocation sized by a corrupt length prefix.

use bytes::{Bytes, BytesMut};
use pmr_cluster::codec::{decode_raw_stream, decode_record_stream, RawRecord};
use pmr_cluster::CodecError;
use proptest::prelude::*;

fn encode(records: &[(Vec<u8>, Vec<u8>)]) -> Bytes {
    let mut buf = BytesMut::new();
    for (k, v) in records {
        let rec = RawRecord { key: Bytes::from(k.clone()), value: Bytes::from(v.clone()) };
        rec.write_framed(&mut buf);
    }
    buf.freeze()
}

proptest! {
    /// Cutting a valid stream at any byte either yields a clean prefix of
    /// the original records (cut on a record boundary) or a `Truncated`
    /// error — never a panic.
    #[test]
    fn truncation_yields_prefix_or_truncated_error(
        records in prop::collection::vec(
            (prop::collection::vec(any::<u8>(), 0..40), prop::collection::vec(any::<u8>(), 0..40)),
            1..10,
        ),
        cut_seed in any::<u16>(),
    ) {
        let full = encode(&records);
        let cut = cut_seed as usize % (full.len() + 1);
        match decode_raw_stream(full.slice(..cut)) {
            Ok(decoded) => {
                prop_assert!(decoded.len() <= records.len());
                for (d, (k, v)) in decoded.iter().zip(&records) {
                    prop_assert_eq!(&d.key[..], &k[..]);
                    prop_assert_eq!(&d.value[..], &v[..]);
                }
                // A clean decode consumed exactly the cut bytes.
                let consumed: usize = decoded.iter().map(|r| r.framed_len()).sum();
                prop_assert_eq!(consumed, cut);
            }
            Err(e) => prop_assert!(matches!(e, CodecError::Truncated { .. })),
        }
    }

    /// Flipping any single byte of a valid stream never panics, and when
    /// the mutated stream still decodes, the decoder consumed exactly the
    /// bytes it was given (no over-read).
    #[test]
    fn single_byte_flips_never_panic_or_over_read(
        records in prop::collection::vec(
            (prop::collection::vec(any::<u8>(), 0..32), prop::collection::vec(any::<u8>(), 0..32)),
            1..8,
        ),
        pos_seed in any::<u16>(),
        flip in 1u8..255,
    ) {
        let full = encode(&records);
        let mut mutated = full.to_vec();
        let pos = pos_seed as usize % mutated.len();
        mutated[pos] ^= flip;
        let len = mutated.len();
        if let Ok(decoded) = decode_raw_stream(Bytes::from(mutated)) {
            let consumed: usize = decoded.iter().map(|r| r.framed_len()).sum();
            prop_assert_eq!(consumed, len);
        }
    }

    /// Arbitrary garbage never panics the raw or the typed decoder.
    #[test]
    fn arbitrary_bytes_never_panic(data in prop::collection::vec(any::<u8>(), 0..600)) {
        let raw = decode_raw_stream(Bytes::from(data.clone()));
        if let Ok(decoded) = &raw {
            let consumed: usize = decoded.iter().map(|r| r.framed_len()).sum();
            prop_assert_eq!(consumed, data.len());
        }
        let _ = decode_record_stream::<u64, u64>(Bytes::from(data));
    }

    /// A length prefix beyond the item bound is `Corrupt`, rejected before
    /// the decoder ever tries to materialize the announced size.
    #[test]
    fn oversized_length_prefix_is_corrupt(tail in prop::collection::vec(any::<u8>(), 0..32)) {
        let mut evil = (u32::MAX).to_be_bytes().to_vec();
        evil.extend_from_slice(&tail);
        let err = decode_raw_stream(Bytes::from(evil)).unwrap_err();
        prop_assert!(matches!(err, CodecError::Corrupt { .. }));
    }
}
