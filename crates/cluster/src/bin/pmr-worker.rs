//! `pmr-worker` — one node's storage server for the multi-process
//! transport.
//!
//! Spawned by [`pmr_cluster::transport::MultiProcessTransport`]; connects
//! back to the coordinator's listener and serves framed put/get/remove
//! requests until shut down. Not intended to be run by hand:
//!
//! ```sh
//! pmr-worker --socket <path-or-addr> --node <index> --mode uds|tcp
//! ```

use pmr_cluster::config::SocketMode;
use pmr_cluster::transport::run_worker;

fn usage() -> ! {
    eprintln!("usage: pmr-worker --socket <path-or-addr> --node <index> --mode uds|tcp");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut socket = None;
    let mut node = None;
    let mut mode = SocketMode::Uds;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else { usage() };
        match flag.as_str() {
            "--socket" => socket = Some(value.clone()),
            "--node" => node = value.parse::<u64>().ok(),
            "--mode" => {
                mode = match value.as_str() {
                    "uds" => SocketMode::Uds,
                    "tcp" => SocketMode::Tcp,
                    _ => usage(),
                }
            }
            _ => usage(),
        }
    }
    let (Some(socket), Some(node)) = (socket, node) else { usage() };
    if let Err(e) = run_worker(&socket, node, mode) {
        eprintln!("pmr-worker node {node}: {e}");
        std::process::exit(1);
    }
}
