//! The transport seam: where node-local storage physically lives.
//!
//! Everything the engine does against a node — map-output partitions,
//! spill runs, cache files, DFS block payloads — goes through a
//! [`NodeStore`], and a [`Transport`] supplies one store per node:
//!
//! * [`InProcessTransport`] — the simulated cluster of the paper model:
//!   stores are in-process hash maps, byte movement is accounted by
//!   [`crate::network::TrafficAccountant`] but never serialized.
//!   Deterministic, the default, and byte-identical to the pre-transport
//!   code path.
//! * [`MultiProcessTransport`] — one spawned `pmr-worker` process per
//!   node, speaking length-prefixed frames (the [`crate::codec`] wire
//!   format) over a Unix-domain socket (TCP on request). Every store
//!   operation physically crosses the process boundary, so the *moved*
//!   byte series becomes a measured number: [`WireSnapshot`] reports the
//!   payload bytes per traffic class, and killing a worker process
//!   (SIGKILL) is a real crash the engine's recovery protocol must
//!   survive.
//!
//! The scheduler, commit protocol, and all *charged* cost accounting stay
//! on the coordinator, which is what keeps output and charged counters
//! bit-identical across transports — the transport moves storage, not
//! semantics.
//!
//! ## Frame format
//!
//! Every message is one frame: a `u32` big-endian payload length followed
//! by the payload. Requests start with a one-byte opcode, then
//! [`crate::codec::Wire`]-encoded operands; responses start with a
//! one-byte status (`0` ok, `1` missing), then the result. Frames above
//! [`MAX_FRAME_LEN`] are rejected without allocating.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{BufMut, Bytes, BytesMut};
use parking_lot::Mutex;

use crate::codec::{Wire, MAX_ITEM_LEN};
use crate::config::SocketMode;
use crate::error::{ClusterError, Result};
use crate::ids::NodeId;

/// Upper bound on one transport frame: the largest length-prefixed codec
/// item plus header room. A frame announcing more is a protocol error and
/// is rejected before any allocation.
pub const MAX_FRAME_LEN: usize = MAX_ITEM_LEN + 1024;

/// How long the coordinator waits for worker processes to connect back
/// after spawning, and for any single RPC response, before declaring the
/// worker dead.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

// ---------------------------------------------------------------------------
// NodeStore: one node's byte-addressed local storage
// ---------------------------------------------------------------------------

/// Byte storage of a single node, keyed by file name.
///
/// [`crate::node::Node`] keeps the *ledger* (which files exist, their
/// sizes, capacity accounting) on the coordinator; the store holds the
/// payload bytes — in-process or in a worker process. The split is what
/// makes capacity checks, `NoSuchFile` semantics, and every charged
/// counter identical across transports.
pub trait NodeStore: Send + Sync {
    /// Stores `data` under `name`, replacing any previous content.
    fn put(&self, name: &str, data: Bytes) -> Result<()>;
    /// Retrieves the content of `name`.
    fn get(&self, name: &str) -> Result<Bytes>;
    /// Removes `name` (a no-op if absent).
    fn remove(&self, name: &str) -> Result<()>;
    /// Removes every file whose name starts with `prefix`.
    fn remove_prefix(&self, prefix: &str) -> Result<()>;
    /// Irrevocably kills the store: in-process data is dropped, a worker
    /// process receives SIGKILL. Idempotent.
    fn kill(&self);
    /// OS process id backing this store, when one exists.
    fn pid(&self) -> Option<u32>;
    /// Whether the backing store is still live (not killed / exited).
    fn is_alive(&self) -> bool;
}

// ---------------------------------------------------------------------------
// Wire accounting
// ---------------------------------------------------------------------------

/// Traffic class of a store operation, derived from the engine's file
/// naming conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WireClass {
    Dfs,
    Seed,
    Spill,
    Cache,
    MapOutput,
    Shuffle,
    Other,
}

fn classify(name: &str, is_get: bool) -> WireClass {
    if name.starts_with("dfs/") {
        WireClass::Dfs
    } else if name.starts_with("seed/") {
        WireClass::Seed
    } else if name.contains("/spill/") {
        WireClass::Spill
    } else if name.contains("/cache/") {
        WireClass::Cache
    } else if name.contains("/p/") {
        if is_get {
            WireClass::Shuffle
        } else {
            WireClass::MapOutput
        }
    } else {
        WireClass::Other
    }
}

/// Payload bytes physically serialized over worker sockets, by traffic
/// class. All zero on the in-process transport (nothing is serialized).
///
/// On a healthy, speculation-free run the partition classes equal the
/// engine's committed *moved* counters exactly (`map_output_bytes` ==
/// `mr.map.output.moved.bytes`, `shuffle_bytes` ==
/// `mr.shuffle.moved.bytes`); under chaos or speculation the wire may
/// carry more (losing attempts move bytes whose scratch counters are
/// discarded), never less.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireSnapshot {
    /// Total frames exchanged (requests + responses).
    pub frames: u64,
    /// DFS block payloads (creation, replica reads, re-replication).
    pub dfs_bytes: u64,
    /// Element-store seeding (`seed/…`, the §5.1 dataset shipment).
    pub seed_bytes: u64,
    /// Distributed-cache files (`mr/<job>/cache/…`).
    pub cache_bytes: u64,
    /// Map-side spill runs written and merged back.
    pub spill_bytes: u64,
    /// Map-output partitions written by map attempts.
    pub map_output_bytes: u64,
    /// Map-output partitions fetched by reduce attempts (the shuffle).
    pub shuffle_bytes: u64,
    /// Anything outside the known naming conventions.
    pub other_bytes: u64,
}

impl WireSnapshot {
    /// Sum of all payload byte classes.
    pub fn total_bytes(&self) -> u64 {
        self.dfs_bytes
            + self.seed_bytes
            + self.cache_bytes
            + self.spill_bytes
            + self.map_output_bytes
            + self.shuffle_bytes
            + self.other_bytes
    }

    /// Bytes moved since `earlier` (fields subtract pairwise).
    pub fn delta(&self, earlier: &WireSnapshot) -> WireSnapshot {
        WireSnapshot {
            frames: self.frames - earlier.frames,
            dfs_bytes: self.dfs_bytes - earlier.dfs_bytes,
            seed_bytes: self.seed_bytes - earlier.seed_bytes,
            cache_bytes: self.cache_bytes - earlier.cache_bytes,
            spill_bytes: self.spill_bytes - earlier.spill_bytes,
            map_output_bytes: self.map_output_bytes - earlier.map_output_bytes,
            shuffle_bytes: self.shuffle_bytes - earlier.shuffle_bytes,
            other_bytes: self.other_bytes - earlier.other_bytes,
        }
    }

    /// The classes as `(name, bytes)` pairs, stable order.
    pub fn series(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("dfs", self.dfs_bytes),
            ("seed", self.seed_bytes),
            ("cache", self.cache_bytes),
            ("spill", self.spill_bytes),
            ("map_output", self.map_output_bytes),
            ("shuffle", self.shuffle_bytes),
            ("other", self.other_bytes),
        ]
    }
}

#[derive(Default)]
struct WireStats {
    frames: AtomicU64,
    dfs: AtomicU64,
    seed: AtomicU64,
    cache: AtomicU64,
    spill: AtomicU64,
    map_output: AtomicU64,
    shuffle: AtomicU64,
    other: AtomicU64,
}

impl WireStats {
    fn add(&self, class: WireClass, payload: u64) {
        self.frames.fetch_add(2, Ordering::Relaxed); // request + response
        let cell = match class {
            WireClass::Dfs => &self.dfs,
            WireClass::Seed => &self.seed,
            WireClass::Spill => &self.spill,
            WireClass::Cache => &self.cache,
            WireClass::MapOutput => &self.map_output,
            WireClass::Shuffle => &self.shuffle,
            WireClass::Other => &self.other,
        };
        cell.fetch_add(payload, Ordering::Relaxed);
    }

    fn snapshot(&self) -> WireSnapshot {
        WireSnapshot {
            frames: self.frames.load(Ordering::Relaxed),
            dfs_bytes: self.dfs.load(Ordering::Relaxed),
            seed_bytes: self.seed.load(Ordering::Relaxed),
            cache_bytes: self.cache.load(Ordering::Relaxed),
            spill_bytes: self.spill.load(Ordering::Relaxed),
            map_output_bytes: self.map_output.load(Ordering::Relaxed),
            shuffle_bytes: self.shuffle.load(Ordering::Relaxed),
            other_bytes: self.other.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

/// One live worker process, as reported in the run report's worker table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerInfo {
    /// The node the worker backs.
    pub node: NodeId,
    /// OS process id.
    pub pid: u32,
    /// Whether the process is still running.
    pub alive: bool,
}

/// Supplies the per-node [`NodeStore`]s and the physical-wire accounting.
pub trait Transport: Send + Sync {
    /// Short transport name (`"in-process"` / `"process"`).
    fn name(&self) -> &'static str;
    /// True when node storage lives in separate worker processes.
    fn is_distributed(&self) -> bool;
    /// Number of nodes this transport was built for.
    fn num_nodes(&self) -> usize;
    /// The store backing `node`'s local files.
    fn store(&self, node: NodeId) -> Arc<dyn NodeStore>;
    /// Payload bytes physically serialized so far (all zero in-process).
    fn wire_snapshot(&self) -> WireSnapshot;
    /// The worker process table (empty in-process).
    fn workers(&self) -> Vec<WorkerInfo>;
}

// ---------------------------------------------------------------------------
// In-process implementation
// ---------------------------------------------------------------------------

/// In-process [`NodeStore`]: a hash map behind a mutex. `kill` drops the
/// map; operations on a killed store report [`ClusterError::NodeDead`].
pub struct InProcessStore {
    node: NodeId,
    files: Mutex<Option<HashMap<String, Bytes>>>,
}

impl InProcessStore {
    /// An empty live store for `node`.
    pub fn new(node: NodeId) -> Self {
        InProcessStore { node, files: Mutex::new(Some(HashMap::new())) }
    }
}

impl NodeStore for InProcessStore {
    fn put(&self, name: &str, data: Bytes) -> Result<()> {
        let mut guard = self.files.lock();
        let files = guard.as_mut().ok_or(ClusterError::NodeDead(self.node))?;
        files.insert(name.to_string(), data);
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Bytes> {
        let guard = self.files.lock();
        let files = guard.as_ref().ok_or(ClusterError::NodeDead(self.node))?;
        files
            .get(name)
            .cloned()
            .ok_or_else(|| ClusterError::NoSuchFile(format!("{}:{name}", self.node)))
    }

    fn remove(&self, name: &str) -> Result<()> {
        let mut guard = self.files.lock();
        let files = guard.as_mut().ok_or(ClusterError::NodeDead(self.node))?;
        files.remove(name);
        Ok(())
    }

    fn remove_prefix(&self, prefix: &str) -> Result<()> {
        let mut guard = self.files.lock();
        let files = guard.as_mut().ok_or(ClusterError::NodeDead(self.node))?;
        files.retain(|name, _| !name.starts_with(prefix));
        Ok(())
    }

    fn kill(&self) {
        *self.files.lock() = None;
    }

    fn pid(&self) -> Option<u32> {
        None
    }

    fn is_alive(&self) -> bool {
        self.files.lock().is_some()
    }
}

/// The simulated transport: every node's store is in-process, nothing is
/// serialized, behavior is exactly the pre-transport cluster.
pub struct InProcessTransport {
    stores: Vec<Arc<InProcessStore>>,
}

impl InProcessTransport {
    /// Builds `n` empty in-process stores.
    pub fn new(n: usize) -> Self {
        InProcessTransport {
            stores: (0..n).map(|i| Arc::new(InProcessStore::new(NodeId(i as u32)))).collect(),
        }
    }
}

impl Transport for InProcessTransport {
    fn name(&self) -> &'static str {
        "in-process"
    }

    fn is_distributed(&self) -> bool {
        false
    }

    fn num_nodes(&self) -> usize {
        self.stores.len()
    }

    fn store(&self, node: NodeId) -> Arc<dyn NodeStore> {
        Arc::clone(&self.stores[node.index()]) as Arc<dyn NodeStore>
    }

    fn wire_snapshot(&self) -> WireSnapshot {
        WireSnapshot::default()
    }

    fn workers(&self) -> Vec<WorkerInfo> {
        Vec::new()
    }
}

// ---------------------------------------------------------------------------
// Frame protocol
// ---------------------------------------------------------------------------

mod op {
    pub const HELLO: u8 = 1;
    pub const PUT: u8 = 2;
    pub const GET: u8 = 3;
    pub const REMOVE: u8 = 4;
    pub const REMOVE_PREFIX: u8 = 5;
    pub const SHUTDOWN: u8 = 6;
}

mod status {
    pub const OK: u8 = 0;
    pub const MISSING: u8 = 1;
}

fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> io::Result<()> {
    debug_assert!(body.len() <= MAX_FRAME_LEN);
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(body)?;
    w.flush()
}

fn read_frame<R: Read>(r: &mut R) -> io::Result<Bytes> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "oversized transport frame"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Bytes::from(body))
}

fn proto_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("malformed transport frame: {what}"))
}

/// A connected stream, UDS or TCP.
enum Conn {
    #[cfg(unix)]
    Uds(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Conn::Uds(s) => s.set_read_timeout(t),
            Conn::Tcp(s) => s.set_read_timeout(t),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            Conn::Uds(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            Conn::Uds(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Conn::Uds(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Serves one worker's store over `addr` until the coordinator shuts the
/// connection down. This is the entire body of the `pmr-worker` binary:
/// connect, identify (`HELLO <node>`), then answer put/get/remove frames
/// against an in-memory file map.
///
/// Returns cleanly when the coordinator sends `SHUTDOWN` or closes the
/// socket (coordinator death must not leave orphan workers serving
/// nobody).
pub fn run_worker(addr: &str, node: u64, mode: SocketMode) -> io::Result<()> {
    let mut conn = match mode {
        #[cfg(unix)]
        SocketMode::Uds => Conn::Uds(UnixStream::connect(addr)?),
        #[cfg(not(unix))]
        SocketMode::Uds => {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain sockets are unavailable on this platform",
            ))
        }
        SocketMode::Tcp => Conn::Tcp(TcpStream::connect(addr)?),
    };
    let mut hello = BytesMut::new();
    hello.put_u8(op::HELLO);
    node.encode(&mut hello);
    write_frame(&mut conn, &hello)?;

    let mut files: HashMap<String, Bytes> = HashMap::new();
    loop {
        let mut req = match read_frame(&mut conn) {
            Ok(frame) => frame,
            // Coordinator hung up: exit quietly.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        let opcode = u8::decode(&mut req).map_err(|e| proto_err(&e.to_string()))?;
        let mut resp = BytesMut::new();
        match opcode {
            op::PUT => {
                let name = String::decode(&mut req).map_err(|e| proto_err(&e.to_string()))?;
                let data = Bytes::decode(&mut req).map_err(|e| proto_err(&e.to_string()))?;
                files.insert(name, data);
                resp.put_u8(status::OK);
            }
            op::GET => {
                let name = String::decode(&mut req).map_err(|e| proto_err(&e.to_string()))?;
                match files.get(&name) {
                    Some(data) => {
                        resp.put_u8(status::OK);
                        data.encode(&mut resp);
                    }
                    None => resp.put_u8(status::MISSING),
                }
            }
            op::REMOVE => {
                let name = String::decode(&mut req).map_err(|e| proto_err(&e.to_string()))?;
                files.remove(&name);
                resp.put_u8(status::OK);
            }
            op::REMOVE_PREFIX => {
                let prefix = String::decode(&mut req).map_err(|e| proto_err(&e.to_string()))?;
                files.retain(|name, _| !name.starts_with(&prefix));
                resp.put_u8(status::OK);
            }
            op::SHUTDOWN => {
                resp.put_u8(status::OK);
                let _ = write_frame(&mut conn, &resp);
                return Ok(());
            }
            other => return Err(proto_err(&format!("unknown opcode {other}"))),
        }
        write_frame(&mut conn, &resp)?;
    }
}

// ---------------------------------------------------------------------------
// Coordinator side: RemoteStore + MultiProcessTransport
// ---------------------------------------------------------------------------

/// Coordinator-side client of one worker process's store. All RPCs go
/// over a single framed connection; any transport failure (worker killed,
/// socket broken, malformed response) marks the connection dead and
/// surfaces as [`ClusterError::NodeDead`] — the same thing a lost node
/// means to the engine.
struct RemoteStore {
    node: NodeId,
    pid: u32,
    conn: Mutex<Option<Conn>>,
    child: Mutex<Option<Child>>,
    stats: Arc<WireStats>,
}

impl RemoteStore {
    fn rpc(&self, req: &[u8]) -> Result<Bytes> {
        let mut guard = self.conn.lock();
        let conn = guard.as_mut().ok_or(ClusterError::NodeDead(self.node))?;
        let roundtrip = write_frame(conn, req).and_then(|()| read_frame(conn));
        match roundtrip {
            Ok(resp) => Ok(resp),
            Err(_) => {
                // Fail the connection permanently: a half-completed frame
                // exchange would desynchronize every later RPC.
                *guard = None;
                Err(ClusterError::NodeDead(self.node))
            }
        }
    }

    fn expect_ok(&self, mut resp: Bytes) -> Result<Bytes> {
        match u8::decode(&mut resp) {
            Ok(s) if s == status::OK => Ok(resp),
            Ok(s) if s == status::MISSING => Err(ClusterError::NoSuchFile(String::new())),
            _ => {
                *self.conn.lock() = None;
                Err(ClusterError::NodeDead(self.node))
            }
        }
    }
}

impl NodeStore for RemoteStore {
    fn put(&self, name: &str, data: Bytes) -> Result<()> {
        let mut req = BytesMut::new();
        req.put_u8(op::PUT);
        name.to_string().encode(&mut req);
        let len = data.len() as u64;
        data.encode(&mut req);
        let resp = self.rpc(&req)?;
        self.expect_ok(resp)?;
        self.stats.add(classify(name, false), len);
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Bytes> {
        let mut req = BytesMut::new();
        req.put_u8(op::GET);
        name.to_string().encode(&mut req);
        let resp = self.rpc(&req)?;
        let mut body = match self.expect_ok(resp) {
            Ok(body) => body,
            Err(ClusterError::NoSuchFile(_)) => {
                return Err(ClusterError::NoSuchFile(format!("{}:{name}", self.node)))
            }
            Err(e) => return Err(e),
        };
        let data = Bytes::decode(&mut body).map_err(|_| ClusterError::NodeDead(self.node))?;
        self.stats.add(classify(name, true), data.len() as u64);
        Ok(data)
    }

    fn remove(&self, name: &str) -> Result<()> {
        let mut req = BytesMut::new();
        req.put_u8(op::REMOVE);
        name.to_string().encode(&mut req);
        let resp = self.rpc(&req)?;
        self.expect_ok(resp)?;
        self.stats.add(classify(name, false), 0);
        Ok(())
    }

    fn remove_prefix(&self, prefix: &str) -> Result<()> {
        let mut req = BytesMut::new();
        req.put_u8(op::REMOVE_PREFIX);
        prefix.to_string().encode(&mut req);
        let resp = self.rpc(&req)?;
        self.expect_ok(resp)?;
        self.stats.add(WireClass::Other, 0);
        Ok(())
    }

    fn kill(&self) {
        // SIGKILL — the worker gets no chance to flush or reply, exactly
        // the failure mode Dean–Ghemawat recovery is specified against.
        if let Some(child) = self.child.lock().as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        *self.conn.lock() = None;
    }

    fn pid(&self) -> Option<u32> {
        Some(self.pid)
    }

    fn is_alive(&self) -> bool {
        match self.child.lock().as_mut() {
            Some(child) => matches!(child.try_wait(), Ok(None)),
            None => false,
        }
    }
}

/// The real-process transport: one spawned `pmr-worker` per node.
///
/// The coordinator binds a listener (Unix-domain socket by default, TCP
/// loopback on request), spawns the workers with the listener address,
/// and each worker connects back and identifies itself with a `HELLO`
/// frame. Dropping the transport shuts surviving workers down gracefully
/// and reaps every child.
pub struct MultiProcessTransport {
    stores: Vec<Arc<RemoteStore>>,
    stats: Arc<WireStats>,
    socket_path: Option<PathBuf>,
}

/// Resolves the worker binary: the `PMR_WORKER_BIN` environment variable
/// when set, otherwise a `pmr-worker` next to (or above) the running
/// executable — which finds `target/<profile>/pmr-worker` both from
/// normal binaries and from test executables in `target/<profile>/deps`.
fn worker_binary() -> Result<PathBuf> {
    if let Ok(path) = std::env::var("PMR_WORKER_BIN") {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Ok(path);
        }
        return Err(ClusterError::Transport(format!(
            "PMR_WORKER_BIN points at a missing file: {}",
            path.display()
        )));
    }
    let exe = std::env::current_exe()
        .map_err(|e| ClusterError::Transport(format!("cannot locate current executable: {e}")))?;
    for dir in exe.ancestors().skip(1) {
        let candidate = dir.join("pmr-worker");
        if candidate.is_file() {
            return Ok(candidate);
        }
    }
    Err(ClusterError::Transport(
        "pmr-worker binary not found near the current executable; \
         build it (cargo build -p pmr-cluster --bin pmr-worker) or set PMR_WORKER_BIN"
            .to_string(),
    ))
}

enum Listener {
    #[cfg(unix)]
    Uds(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Conn> {
        match self {
            #[cfg(unix)]
            Listener::Uds(l) => l.accept().map(|(s, _)| Conn::Uds(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Listener::Uds(l) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }
}

static SOCKET_SEQ: AtomicU64 = AtomicU64::new(0);

impl MultiProcessTransport {
    /// Spawns `n` worker processes and completes the connection
    /// handshake. Fails (cleaning up every spawned child) if the worker
    /// binary is missing or any worker does not connect within the
    /// timeout.
    pub fn spawn(n: usize, mode: SocketMode) -> Result<Self> {
        let bin = worker_binary()?;
        let terr = |what: &str, e: io::Error| ClusterError::Transport(format!("{what}: {e}"));

        let (listener, addr, socket_path) = match mode {
            #[cfg(unix)]
            SocketMode::Uds => {
                let path = std::env::temp_dir().join(format!(
                    "pmr-{}-{}.sock",
                    std::process::id(),
                    SOCKET_SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                let _ = std::fs::remove_file(&path);
                let listener =
                    UnixListener::bind(&path).map_err(|e| terr("bind unix socket", e))?;
                let addr = path.display().to_string();
                (Listener::Uds(listener), addr, Some(path))
            }
            #[cfg(not(unix))]
            SocketMode::Uds => {
                return Err(ClusterError::Transport(
                    "unix-domain sockets are unavailable on this platform; use TCP".to_string(),
                ))
            }
            SocketMode::Tcp => {
                let listener =
                    TcpListener::bind("127.0.0.1:0").map_err(|e| terr("bind tcp socket", e))?;
                let addr =
                    listener.local_addr().map_err(|e| terr("tcp local addr", e))?.to_string();
                (Listener::Tcp(listener), addr, None)
            }
        };

        let mut children: Vec<Child> = Vec::with_capacity(n);
        let cleanup = |children: &mut Vec<Child>| {
            for child in children.iter_mut() {
                let _ = child.kill();
                let _ = child.wait();
            }
            if let Some(path) = &socket_path {
                let _ = std::fs::remove_file(path);
            }
        };
        for node in 0..n {
            let spawned = Command::new(&bin)
                .arg("--socket")
                .arg(&addr)
                .arg("--node")
                .arg(node.to_string())
                .arg("--mode")
                .arg(match mode {
                    SocketMode::Uds => "uds",
                    SocketMode::Tcp => "tcp",
                })
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::inherit())
                .spawn();
            match spawned {
                Ok(child) => children.push(child),
                Err(e) => {
                    cleanup(&mut children);
                    return Err(terr(&format!("spawn worker {node}"), e));
                }
            }
        }

        // Accept until every worker has said HELLO, with a hard deadline.
        listener.set_nonblocking(true).map_err(|e| terr("listener nonblocking", e))?;
        let deadline = Instant::now() + IO_TIMEOUT;
        let mut conns: Vec<Option<Conn>> = (0..n).map(|_| None).collect();
        let mut connected = 0usize;
        while connected < n {
            match listener.accept() {
                Ok(conn) => {
                    let accepted = (|| -> io::Result<(u64, Conn)> {
                        conn.set_read_timeout(Some(IO_TIMEOUT))?;
                        let mut conn = conn;
                        let mut hello = read_frame(&mut conn)?;
                        let opcode =
                            u8::decode(&mut hello).map_err(|e| proto_err(&e.to_string()))?;
                        if opcode != op::HELLO {
                            return Err(proto_err("expected HELLO"));
                        }
                        let node =
                            u64::decode(&mut hello).map_err(|e| proto_err(&e.to_string()))?;
                        Ok((node, conn))
                    })();
                    match accepted {
                        Ok((node, conn)) if (node as usize) < n => {
                            if conns[node as usize].replace(conn).is_none() {
                                connected += 1;
                            }
                        }
                        _ => {
                            cleanup(&mut children);
                            return Err(ClusterError::Transport(
                                "worker handshake failed".to_string(),
                            ));
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        cleanup(&mut children);
                        return Err(ClusterError::Transport(format!(
                            "timed out waiting for workers to connect ({connected}/{n})"
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    cleanup(&mut children);
                    return Err(terr("accept worker connection", e));
                }
            }
        }

        let stats = Arc::new(WireStats::default());
        let stores = children
            .into_iter()
            .zip(conns)
            .enumerate()
            .map(|(i, (child, conn))| {
                Arc::new(RemoteStore {
                    node: NodeId(i as u32),
                    pid: child.id(),
                    conn: Mutex::new(conn),
                    child: Mutex::new(Some(child)),
                    stats: Arc::clone(&stats),
                })
            })
            .collect();
        Ok(MultiProcessTransport { stores, stats, socket_path })
    }
}

impl Transport for MultiProcessTransport {
    fn name(&self) -> &'static str {
        "process"
    }

    fn is_distributed(&self) -> bool {
        true
    }

    fn num_nodes(&self) -> usize {
        self.stores.len()
    }

    fn store(&self, node: NodeId) -> Arc<dyn NodeStore> {
        Arc::clone(&self.stores[node.index()]) as Arc<dyn NodeStore>
    }

    fn wire_snapshot(&self) -> WireSnapshot {
        self.stats.snapshot()
    }

    fn workers(&self) -> Vec<WorkerInfo> {
        self.stores
            .iter()
            .map(|s| WorkerInfo { node: s.node, pid: s.pid, alive: s.is_alive() })
            .collect()
    }
}

impl Drop for MultiProcessTransport {
    fn drop(&mut self) {
        for store in &self.stores {
            // Polite shutdown first so healthy workers exit on their own…
            let mut req = BytesMut::new();
            req.put_u8(op::SHUTDOWN);
            let _ = store.rpc(&req);
            // …then make sure, and reap.
            store.kill();
        }
        if let Some(path) = &self.socket_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_follows_engine_naming() {
        assert_eq!(classify("dfs/run/input-0/3", false), WireClass::Dfs);
        assert_eq!(classify("seed/dataset", false), WireClass::Seed);
        assert_eq!(classify("mr/3/m/1/spill/0/p/2", true), WireClass::Spill);
        assert_eq!(classify("mr/3/cache/dataset", false), WireClass::Cache);
        assert_eq!(classify("mr/3/m/1/p/2", false), WireClass::MapOutput);
        assert_eq!(classify("mr/3/m/1/p/2", true), WireClass::Shuffle);
        assert_eq!(classify("scratch", false), WireClass::Other);
    }

    #[test]
    fn in_process_store_roundtrip_and_kill() {
        let store = InProcessStore::new(NodeId(0));
        store.put("a/b", Bytes::from_static(b"xy")).unwrap();
        assert_eq!(store.get("a/b").unwrap(), Bytes::from_static(b"xy"));
        assert!(matches!(store.get("a/c"), Err(ClusterError::NoSuchFile(_))));
        store.remove_prefix("a/").unwrap();
        assert!(store.get("a/b").is_err());
        assert!(store.is_alive());
        store.kill();
        assert!(!store.is_alive());
        assert!(matches!(store.get("a/b"), Err(ClusterError::NodeDead(_))));
        assert!(matches!(store.put("a/b", Bytes::new()), Err(ClusterError::NodeDead(_))));
    }

    #[test]
    fn frame_roundtrip_and_oversize_rejection() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), Bytes::from_static(b"hello"));

        // A header promising more than MAX_FRAME_LEN is rejected before
        // any allocation happens.
        let huge = (u32::MAX).to_be_bytes().to_vec();
        let mut r = io::Cursor::new(huge);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn wire_snapshot_delta_and_series() {
        let stats = WireStats::default();
        stats.add(WireClass::Shuffle, 100);
        let early = stats.snapshot();
        stats.add(WireClass::Shuffle, 50);
        stats.add(WireClass::Dfs, 7);
        let late = stats.snapshot();
        let delta = late.delta(&early);
        assert_eq!(delta.shuffle_bytes, 50);
        assert_eq!(delta.dfs_bytes, 7);
        assert_eq!(delta.frames, 4);
        assert_eq!(delta.total_bytes(), 57);
        let series = delta.series();
        assert_eq!(series.iter().find(|(k, _)| *k == "shuffle").unwrap().1, 50);
    }
}
