//! The transport seam: where node-local storage physically lives.
//!
//! Everything the engine does against a node — map-output partitions,
//! spill runs, cache files, DFS block payloads — goes through a
//! [`NodeStore`], and a [`Transport`] supplies one store per node:
//!
//! * [`InProcessTransport`] — the simulated cluster of the paper model:
//!   stores are in-process hash maps, byte movement is accounted by
//!   [`crate::network::TrafficAccountant`] but never serialized.
//!   Deterministic, the default, and byte-identical to the pre-transport
//!   code path.
//! * [`MultiProcessTransport`] — one spawned `pmr-worker` process per
//!   node, speaking length-prefixed frames (the [`crate::codec`] wire
//!   format) over a Unix-domain socket (TCP on request). Every store
//!   operation physically crosses the process boundary, so the *moved*
//!   byte series becomes a measured number: [`WireSnapshot`] reports the
//!   payload bytes per traffic class, and killing a worker process
//!   (SIGKILL) is a real crash the engine's recovery protocol must
//!   survive.
//!
//! The scheduler, commit protocol, and all *charged* cost accounting stay
//! on the coordinator, which is what keeps output and charged counters
//! bit-identical across transports — the transport moves storage, not
//! semantics.
//!
//! ## Frame format
//!
//! Every message is one frame: a `u32` big-endian payload length followed
//! by the payload. Requests start with a one-byte opcode, then
//! [`crate::codec::Wire`]-encoded operands; responses start with a
//! one-byte status (`0` ok, `1` missing), then the result. Frames above
//! [`MAX_FRAME_LEN`] are rejected without allocating.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{BufMut, Bytes, BytesMut};
use parking_lot::Mutex;
use pmr_obs::{trace, Telemetry, TraceEvent};

use crate::codec::{Wire, MAX_ITEM_LEN};
use crate::config::SocketMode;
use crate::error::{ClusterError, Result};
use crate::ids::NodeId;

/// Upper bound on one transport frame: the largest length-prefixed codec
/// item plus header room. A frame announcing more is a protocol error and
/// is rejected before any allocation.
pub const MAX_FRAME_LEN: usize = MAX_ITEM_LEN + 1024;

/// How long the coordinator waits for worker processes to connect back
/// after spawning, and for any single RPC response, before declaring the
/// worker dead.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

// ---------------------------------------------------------------------------
// NodeStore: one node's byte-addressed local storage
// ---------------------------------------------------------------------------

/// Byte storage of a single node, keyed by file name.
///
/// [`crate::node::Node`] keeps the *ledger* (which files exist, their
/// sizes, capacity accounting) on the coordinator; the store holds the
/// payload bytes — in-process or in a worker process. The split is what
/// makes capacity checks, `NoSuchFile` semantics, and every charged
/// counter identical across transports.
pub trait NodeStore: Send + Sync {
    /// Stores `data` under `name`, replacing any previous content.
    fn put(&self, name: &str, data: Bytes) -> Result<()>;
    /// Retrieves the content of `name`.
    fn get(&self, name: &str) -> Result<Bytes>;
    /// Removes `name` (a no-op if absent).
    fn remove(&self, name: &str) -> Result<()>;
    /// Removes every file whose name starts with `prefix`.
    fn remove_prefix(&self, prefix: &str) -> Result<()>;
    /// Irrevocably kills the store: in-process data is dropped, a worker
    /// process receives SIGKILL. Idempotent.
    fn kill(&self);
    /// OS process id backing this store, when one exists.
    fn pid(&self) -> Option<u32>;
    /// Whether the backing store is still live (not killed / exited).
    fn is_alive(&self) -> bool;
}

// ---------------------------------------------------------------------------
// Wire accounting
// ---------------------------------------------------------------------------

/// Traffic class of a store operation, derived from the engine's file
/// naming conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WireClass {
    Dfs,
    Seed,
    Spill,
    Cache,
    MapOutput,
    Shuffle,
    Other,
}

fn classify(name: &str, is_get: bool) -> WireClass {
    if name.starts_with("dfs/") {
        WireClass::Dfs
    } else if name.starts_with("seed/") {
        WireClass::Seed
    } else if name.contains("/spill/") {
        WireClass::Spill
    } else if name.contains("/cache/") {
        WireClass::Cache
    } else if name.contains("/p/") {
        if is_get {
            WireClass::Shuffle
        } else {
            WireClass::MapOutput
        }
    } else {
        WireClass::Other
    }
}

/// Single-byte encoding of a [`WireClass`] for worker trace frames.
fn class_code(class: WireClass) -> u8 {
    match class {
        WireClass::Dfs => 0,
        WireClass::Seed => 1,
        WireClass::Cache => 2,
        WireClass::Spill => 3,
        WireClass::MapOutput => 4,
        WireClass::Shuffle => 5,
        WireClass::Other => 6,
    }
}

/// Class name for a worker-reported class code, matching the keys of
/// [`WireSnapshot::series`]. Unknown codes collapse to `"other"`.
fn class_name(code: u8) -> &'static str {
    match code {
        0 => "dfs",
        1 => "seed",
        2 => "cache",
        3 => "spill",
        4 => "map_output",
        5 => "shuffle",
        _ => "other",
    }
}

/// Payload bytes physically serialized over worker sockets, by traffic
/// class. All zero on the in-process transport (nothing is serialized).
///
/// On a healthy, speculation-free run the partition classes equal the
/// engine's committed *moved* counters exactly (`map_output_bytes` ==
/// `mr.map.output.moved.bytes`, `shuffle_bytes` ==
/// `mr.shuffle.moved.bytes`); under chaos or speculation the wire may
/// carry more (losing attempts move bytes whose scratch counters are
/// discarded), never less.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireSnapshot {
    /// Total frames exchanged (requests + responses).
    pub frames: u64,
    /// DFS block payloads (creation, replica reads, re-replication).
    pub dfs_bytes: u64,
    /// Element-store seeding (`seed/…`, the §5.1 dataset shipment).
    pub seed_bytes: u64,
    /// Distributed-cache files (`mr/<job>/cache/…`).
    pub cache_bytes: u64,
    /// Map-side spill runs written and merged back.
    pub spill_bytes: u64,
    /// Map-output partitions written by map attempts.
    pub map_output_bytes: u64,
    /// Map-output partitions fetched by reduce attempts (the shuffle).
    pub shuffle_bytes: u64,
    /// Anything outside the known naming conventions.
    pub other_bytes: u64,
}

impl WireSnapshot {
    /// Sum of all payload byte classes.
    pub fn total_bytes(&self) -> u64 {
        self.dfs_bytes
            + self.seed_bytes
            + self.cache_bytes
            + self.spill_bytes
            + self.map_output_bytes
            + self.shuffle_bytes
            + self.other_bytes
    }

    /// Bytes moved since `earlier` (fields subtract pairwise).
    pub fn delta(&self, earlier: &WireSnapshot) -> WireSnapshot {
        WireSnapshot {
            frames: self.frames - earlier.frames,
            dfs_bytes: self.dfs_bytes - earlier.dfs_bytes,
            seed_bytes: self.seed_bytes - earlier.seed_bytes,
            cache_bytes: self.cache_bytes - earlier.cache_bytes,
            spill_bytes: self.spill_bytes - earlier.spill_bytes,
            map_output_bytes: self.map_output_bytes - earlier.map_output_bytes,
            shuffle_bytes: self.shuffle_bytes - earlier.shuffle_bytes,
            other_bytes: self.other_bytes - earlier.other_bytes,
        }
    }

    /// The classes as `(name, bytes)` pairs, stable order.
    pub fn series(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("dfs", self.dfs_bytes),
            ("seed", self.seed_bytes),
            ("cache", self.cache_bytes),
            ("spill", self.spill_bytes),
            ("map_output", self.map_output_bytes),
            ("shuffle", self.shuffle_bytes),
            ("other", self.other_bytes),
        ]
    }
}

#[derive(Default)]
struct WireStats {
    frames: AtomicU64,
    dfs: AtomicU64,
    seed: AtomicU64,
    cache: AtomicU64,
    spill: AtomicU64,
    map_output: AtomicU64,
    shuffle: AtomicU64,
    other: AtomicU64,
}

impl WireStats {
    fn add(&self, class: WireClass, payload: u64) {
        self.frames.fetch_add(2, Ordering::Relaxed); // request + response
        let cell = match class {
            WireClass::Dfs => &self.dfs,
            WireClass::Seed => &self.seed,
            WireClass::Spill => &self.spill,
            WireClass::Cache => &self.cache,
            WireClass::MapOutput => &self.map_output,
            WireClass::Shuffle => &self.shuffle,
            WireClass::Other => &self.other,
        };
        cell.fetch_add(payload, Ordering::Relaxed);
    }

    fn snapshot(&self) -> WireSnapshot {
        WireSnapshot {
            frames: self.frames.load(Ordering::Relaxed),
            dfs_bytes: self.dfs.load(Ordering::Relaxed),
            seed_bytes: self.seed.load(Ordering::Relaxed),
            cache_bytes: self.cache.load(Ordering::Relaxed),
            spill_bytes: self.spill.load(Ordering::Relaxed),
            map_output_bytes: self.map_output.load(Ordering::Relaxed),
            shuffle_bytes: self.shuffle.load(Ordering::Relaxed),
            other_bytes: self.other.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

/// One live worker process, as reported in the run report's worker table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerInfo {
    /// The node the worker backs.
    pub node: NodeId,
    /// OS process id.
    pub pid: u32,
    /// Whether the process is still running.
    pub alive: bool,
    /// Estimated clock offset (worker clock minus coordinator telemetry
    /// clock) in µs; `0` when the worker was never traced.
    pub offset_us: i64,
    /// Worker-side trace events drained into the merged trace so far.
    pub trace_events: u64,
    /// Events the worker's bounded ring evicted before they were drained.
    pub trace_dropped: u64,
}

/// Supplies the per-node [`NodeStore`]s and the physical-wire accounting.
pub trait Transport: Send + Sync {
    /// Short transport name (`"in-process"` / `"process"`).
    fn name(&self) -> &'static str;
    /// True when node storage lives in separate worker processes.
    fn is_distributed(&self) -> bool;
    /// Number of nodes this transport was built for.
    fn num_nodes(&self) -> usize;
    /// The store backing `node`'s local files.
    fn store(&self, node: NodeId) -> Arc<dyn NodeStore>;
    /// Payload bytes physically serialized so far (all zero in-process).
    fn wire_snapshot(&self) -> WireSnapshot;
    /// The worker process table (empty in-process).
    fn workers(&self) -> Vec<WorkerInfo>;
    /// Attaches the coordinator's telemetry handle. On a distributed
    /// transport with telemetry enabled this switches the worker trace
    /// rings on and estimates each worker's clock offset via a PING
    /// exchange; otherwise a no-op (the default).
    fn set_telemetry(&self, _telemetry: &Telemetry) {}
    /// Drains every live worker's trace ring into the attached telemetry
    /// sink, rebasing worker timestamps onto the coordinator's epoch.
    /// Unreachable (e.g. SIGKILL'd) workers are marked with a one-time
    /// `worker.lost` event at their last sign of life. No-op by default
    /// and whenever no enabled telemetry was attached.
    fn drain_traces(&self) {}
}

// ---------------------------------------------------------------------------
// In-process implementation
// ---------------------------------------------------------------------------

/// In-process [`NodeStore`]: a hash map behind a mutex. `kill` drops the
/// map; operations on a killed store report [`ClusterError::NodeDead`].
pub struct InProcessStore {
    node: NodeId,
    files: Mutex<Option<HashMap<String, Bytes>>>,
}

impl InProcessStore {
    /// An empty live store for `node`.
    pub fn new(node: NodeId) -> Self {
        InProcessStore { node, files: Mutex::new(Some(HashMap::new())) }
    }
}

impl NodeStore for InProcessStore {
    fn put(&self, name: &str, data: Bytes) -> Result<()> {
        let mut guard = self.files.lock();
        let files = guard.as_mut().ok_or(ClusterError::NodeDead(self.node))?;
        files.insert(name.to_string(), data);
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Bytes> {
        let guard = self.files.lock();
        let files = guard.as_ref().ok_or(ClusterError::NodeDead(self.node))?;
        files
            .get(name)
            .cloned()
            .ok_or_else(|| ClusterError::NoSuchFile(format!("{}:{name}", self.node)))
    }

    fn remove(&self, name: &str) -> Result<()> {
        let mut guard = self.files.lock();
        let files = guard.as_mut().ok_or(ClusterError::NodeDead(self.node))?;
        files.remove(name);
        Ok(())
    }

    fn remove_prefix(&self, prefix: &str) -> Result<()> {
        let mut guard = self.files.lock();
        let files = guard.as_mut().ok_or(ClusterError::NodeDead(self.node))?;
        files.retain(|name, _| !name.starts_with(prefix));
        Ok(())
    }

    fn kill(&self) {
        *self.files.lock() = None;
    }

    fn pid(&self) -> Option<u32> {
        None
    }

    fn is_alive(&self) -> bool {
        self.files.lock().is_some()
    }
}

/// The simulated transport: every node's store is in-process, nothing is
/// serialized, behavior is exactly the pre-transport cluster.
pub struct InProcessTransport {
    stores: Vec<Arc<InProcessStore>>,
}

impl InProcessTransport {
    /// Builds `n` empty in-process stores.
    pub fn new(n: usize) -> Self {
        InProcessTransport {
            stores: (0..n).map(|i| Arc::new(InProcessStore::new(NodeId(i as u32)))).collect(),
        }
    }
}

impl Transport for InProcessTransport {
    fn name(&self) -> &'static str {
        "in-process"
    }

    fn is_distributed(&self) -> bool {
        false
    }

    fn num_nodes(&self) -> usize {
        self.stores.len()
    }

    fn store(&self, node: NodeId) -> Arc<dyn NodeStore> {
        Arc::clone(&self.stores[node.index()]) as Arc<dyn NodeStore>
    }

    fn wire_snapshot(&self) -> WireSnapshot {
        WireSnapshot::default()
    }

    fn workers(&self) -> Vec<WorkerInfo> {
        Vec::new()
    }
}

// ---------------------------------------------------------------------------
// Frame protocol
// ---------------------------------------------------------------------------

mod op {
    pub const HELLO: u8 = 1;
    pub const PUT: u8 = 2;
    pub const GET: u8 = 3;
    pub const REMOVE: u8 = 4;
    pub const REMOVE_PREFIX: u8 = 5;
    pub const SHUTDOWN: u8 = 6;
    /// Clock probe: replies `OK` + the worker's clock (µs since its own
    /// epoch). Used by the coordinator's offset estimator.
    pub const PING: u8 = 7;
    /// Enables (operand `1`) or disables (`0`) the worker's trace ring.
    pub const TRACE_CTL: u8 = 8;
    /// Drains the worker's trace ring: replies `OK` + a
    /// [`super::WorkerTraceReport`], then clears the ring.
    pub const TRACE_DRAIN: u8 = 9;
}

mod status {
    pub const OK: u8 = 0;
    pub const MISSING: u8 = 1;
}

fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> io::Result<()> {
    debug_assert!(body.len() <= MAX_FRAME_LEN);
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(body)?;
    w.flush()
}

fn read_frame<R: Read>(r: &mut R) -> io::Result<Bytes> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "oversized transport frame"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Bytes::from(body))
}

fn proto_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("malformed transport frame: {what}"))
}

/// A connected stream, UDS or TCP.
enum Conn {
    #[cfg(unix)]
    Uds(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Conn::Uds(s) => s.set_read_timeout(t),
            Conn::Tcp(s) => s.set_read_timeout(t),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            Conn::Uds(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            Conn::Uds(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Conn::Uds(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

// ---------------------------------------------------------------------------
// Worker-side tracing
// ---------------------------------------------------------------------------

/// Upper bound on events a worker retains between drains. The ring is
/// bounded: under backpressure the oldest events are evicted and counted
/// in [`WorkerTraceReport::dropped`], never blocking the serve loop.
const WORKER_RING_CAPACITY: usize = 1 << 15;

/// How often a tracing worker stamps a heartbeat event into its ring.
const HEARTBEAT_INTERVAL_US: u64 = 50_000;

/// Rounds of the PING exchange behind the clock-offset estimator; the
/// round with the smallest RTT wins (NTP-style minimum filter).
const PING_ROUNDS: usize = 8;

/// One frame-level span recorded inside a worker process. Timestamps are
/// µs on the *worker's* clock (its process-start epoch); the coordinator
/// rebases them onto its telemetry epoch using the PING-estimated offset
/// before merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerTraceEvent {
    /// Frame opcode handled (`op::PUT` …), or `0` for a heartbeat.
    pub opcode: u8,
    /// Traffic-class code (see `class_code`); meaningless for heartbeats.
    pub class: u8,
    /// Start of handling, µs since the worker's epoch.
    pub at_us: u64,
    /// Handling duration in µs (decode + store op + response encode).
    pub dur_us: u64,
    /// Payload bytes: data written on PUT, data returned on GET, else 0.
    pub bytes: u64,
    /// Heartbeat stats (`ops=… bytes=…`), empty for op spans.
    pub detail: String,
}

impl Wire for WorkerTraceEvent {
    fn encode(&self, buf: &mut BytesMut) {
        self.opcode.encode(buf);
        self.class.encode(buf);
        self.at_us.encode(buf);
        self.dur_us.encode(buf);
        self.bytes.encode(buf);
        self.detail.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> crate::codec::DecodeResult<Self> {
        Ok(WorkerTraceEvent {
            opcode: u8::decode(buf)?,
            class: u8::decode(buf)?,
            at_us: u64::decode(buf)?,
            dur_us: u64::decode(buf)?,
            bytes: u64::decode(buf)?,
            detail: String::decode(buf)?,
        })
    }
}

/// Converts one drained worker event — already rebased to `at_us` on the
/// coordinator's telemetry axis — into a merged-trace event on that
/// node's process lane.
fn worker_trace_event(node: u32, at_us: u64, ev: &WorkerTraceEvent) -> TraceEvent {
    let kind = match ev.opcode {
        op::PUT => trace::kind::WORKER_PUT,
        op::GET => trace::kind::WORKER_GET,
        op::REMOVE => trace::kind::WORKER_REMOVE,
        op::REMOVE_PREFIX => trace::kind::WORKER_REMOVE_PREFIX,
        _ => trace::kind::WORKER_HEARTBEAT,
    };
    TraceEvent {
        at_us,
        kind,
        node,
        phase: if ev.opcode == 0 { String::new() } else { class_name(ev.class).to_string() },
        bytes: ev.bytes,
        dur_us: ev.dur_us,
        detail: ev.detail.clone(),
        ..TraceEvent::default()
    }
}

/// Payload of a `TRACE_DRAIN` response: the ring contents in recording
/// order plus the eviction count since the previous drain.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkerTraceReport {
    /// Events evicted from the bounded ring since the last drain.
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<WorkerTraceEvent>,
}

impl Wire for WorkerTraceReport {
    fn encode(&self, buf: &mut BytesMut) {
        self.dropped.encode(buf);
        self.events.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> crate::codec::DecodeResult<Self> {
        Ok(WorkerTraceReport { dropped: u64::decode(buf)?, events: Vec::decode(buf)? })
    }
}

/// The worker process's trace state: a bounded ring plus heartbeat
/// bookkeeping. Disabled until the coordinator sends `TRACE_CTL 1`, and
/// the serve loop takes no timestamps while disabled — an untraced worker
/// does no extra work per frame.
struct WorkerTrace {
    enabled: bool,
    epoch: Instant,
    ring: VecDeque<WorkerTraceEvent>,
    dropped: u64,
    last_heartbeat_us: u64,
    ops: u64,
    payload_bytes: u64,
}

impl WorkerTrace {
    fn new() -> Self {
        WorkerTrace {
            enabled: false,
            epoch: Instant::now(),
            ring: VecDeque::new(),
            dropped: 0,
            last_heartbeat_us: 0,
            ops: 0,
            payload_bytes: 0,
        }
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn push(&mut self, ev: WorkerTraceEvent) {
        if self.ring.len() >= WORKER_RING_CAPACITY {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    /// Records one handled data frame and, when due, a heartbeat after it.
    fn record(&mut self, opcode: u8, class: WireClass, at_us: u64, bytes: u64) {
        let now = self.now_us();
        self.ops += 1;
        self.payload_bytes += bytes;
        self.push(WorkerTraceEvent {
            opcode,
            class: class_code(class),
            at_us,
            dur_us: now.saturating_sub(at_us),
            bytes,
            detail: String::new(),
        });
        if now.saturating_sub(self.last_heartbeat_us) >= HEARTBEAT_INTERVAL_US {
            self.last_heartbeat_us = now;
            let detail = format!("ops={} bytes={}", self.ops, self.payload_bytes);
            self.push(WorkerTraceEvent {
                opcode: 0,
                class: class_code(WireClass::Other),
                at_us: now,
                dur_us: 0,
                bytes: 0,
                detail,
            });
        }
    }

    /// Hands the ring over, closing it with one final heartbeat so every
    /// drained batch carries the worker's cumulative frame stats (and a
    /// later crash always has a "last heartbeat" to anchor against).
    fn drain(&mut self) -> WorkerTraceReport {
        let now = self.now_us();
        self.last_heartbeat_us = now;
        let detail = format!("ops={} bytes={}", self.ops, self.payload_bytes);
        self.push(WorkerTraceEvent {
            opcode: 0,
            class: class_code(WireClass::Other),
            at_us: now,
            dur_us: 0,
            bytes: 0,
            detail,
        });
        WorkerTraceReport {
            dropped: std::mem::take(&mut self.dropped),
            events: std::mem::take(&mut self.ring).into(),
        }
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Serves one worker's store over `addr` until the coordinator shuts the
/// connection down. This is the entire body of the `pmr-worker` binary:
/// connect, identify (`HELLO <node>`), then answer put/get/remove frames
/// against an in-memory file map.
///
/// Returns cleanly when the coordinator sends `SHUTDOWN` or closes the
/// socket (coordinator death must not leave orphan workers serving
/// nobody).
pub fn run_worker(addr: &str, node: u64, mode: SocketMode) -> io::Result<()> {
    let mut conn = match mode {
        #[cfg(unix)]
        SocketMode::Uds => Conn::Uds(UnixStream::connect(addr)?),
        #[cfg(not(unix))]
        SocketMode::Uds => {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain sockets are unavailable on this platform",
            ))
        }
        SocketMode::Tcp => Conn::Tcp(TcpStream::connect(addr)?),
    };
    let mut hello = BytesMut::new();
    hello.put_u8(op::HELLO);
    node.encode(&mut hello);
    write_frame(&mut conn, &hello)?;

    let mut files: HashMap<String, Bytes> = HashMap::new();
    let mut trace = WorkerTrace::new();
    loop {
        let mut req = match read_frame(&mut conn) {
            Ok(frame) => frame,
            // Coordinator hung up: exit quietly.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        let opcode = u8::decode(&mut req).map_err(|e| proto_err(&e.to_string()))?;
        // Timestamp only when tracing: an untraced worker does not touch
        // the clock per frame (the zero-overhead guarantee).
        let at_us = if trace.enabled { trace.now_us() } else { 0 };
        let mut resp = BytesMut::new();
        match opcode {
            op::PUT => {
                let name = String::decode(&mut req).map_err(|e| proto_err(&e.to_string()))?;
                let data = Bytes::decode(&mut req).map_err(|e| proto_err(&e.to_string()))?;
                let bytes = data.len() as u64;
                let class = classify(&name, false);
                files.insert(name, data);
                resp.put_u8(status::OK);
                if trace.enabled {
                    trace.record(op::PUT, class, at_us, bytes);
                }
            }
            op::GET => {
                let name = String::decode(&mut req).map_err(|e| proto_err(&e.to_string()))?;
                let mut bytes = 0u64;
                match files.get(&name) {
                    Some(data) => {
                        bytes = data.len() as u64;
                        resp.put_u8(status::OK);
                        data.encode(&mut resp);
                    }
                    None => resp.put_u8(status::MISSING),
                }
                if trace.enabled {
                    trace.record(op::GET, classify(&name, true), at_us, bytes);
                }
            }
            op::REMOVE => {
                let name = String::decode(&mut req).map_err(|e| proto_err(&e.to_string()))?;
                files.remove(&name);
                resp.put_u8(status::OK);
                if trace.enabled {
                    trace.record(op::REMOVE, classify(&name, false), at_us, 0);
                }
            }
            op::REMOVE_PREFIX => {
                let prefix = String::decode(&mut req).map_err(|e| proto_err(&e.to_string()))?;
                files.retain(|name, _| !name.starts_with(&prefix));
                resp.put_u8(status::OK);
                if trace.enabled {
                    trace.record(op::REMOVE_PREFIX, WireClass::Other, at_us, 0);
                }
            }
            // Control frames are never recorded in the ring and never
            // counted in a wire class: the byte-parity invariant (wire ==
            // moved) and the per-class sums must not see the trace plane.
            op::PING => {
                resp.put_u8(status::OK);
                trace.now_us().encode(&mut resp);
            }
            op::TRACE_CTL => {
                let on = u8::decode(&mut req).map_err(|e| proto_err(&e.to_string()))?;
                trace.enabled = on != 0;
                if trace.enabled {
                    // Heartbeats count from the enable point.
                    trace.last_heartbeat_us = trace.now_us();
                }
                resp.put_u8(status::OK);
            }
            op::TRACE_DRAIN => {
                resp.put_u8(status::OK);
                trace.drain().encode(&mut resp);
            }
            op::SHUTDOWN => {
                resp.put_u8(status::OK);
                let _ = write_frame(&mut conn, &resp);
                return Ok(());
            }
            other => return Err(proto_err(&format!("unknown opcode {other}"))),
        }
        write_frame(&mut conn, &resp)?;
    }
}

// ---------------------------------------------------------------------------
// Coordinator side: RemoteStore + MultiProcessTransport
// ---------------------------------------------------------------------------

/// Coordinator-side client of one worker process's store. All RPCs go
/// over a single framed connection; any transport failure (worker killed,
/// socket broken, malformed response) marks the connection dead and
/// surfaces as [`ClusterError::NodeDead`] — the same thing a lost node
/// means to the engine.
struct RemoteStore {
    node: NodeId,
    pid: u32,
    conn: Mutex<Option<Conn>>,
    child: Mutex<Option<Child>>,
    stats: Arc<WireStats>,
    trace: TraceState,
}

/// Coordinator-side distributed-tracing state for one worker.
struct TraceState {
    /// Worker ring switched on and offset estimated.
    enabled: AtomicBool,
    /// The coordinator sink drains merge into (disabled until attached).
    telemetry: Mutex<Telemetry>,
    /// Estimated worker-minus-coordinator clock offset, µs.
    offset_us: AtomicI64,
    /// Coordinator-clock µs of the last successful RPC (liveness mark).
    last_seen_us: AtomicU64,
    /// Largest rebased timestamp merged for this worker's lane, so later
    /// drains (and the `worker.lost` mark) stay monotone per lane even
    /// when the offset estimate is off by a few µs.
    high_water_us: AtomicU64,
    /// Events drained so far / evicted worker-side before a drain.
    events: AtomicU64,
    dropped: AtomicU64,
    /// The one-time `worker.lost` mark was already emitted.
    lost_marked: AtomicBool,
}

impl Default for TraceState {
    fn default() -> Self {
        TraceState {
            enabled: AtomicBool::new(false),
            telemetry: Mutex::new(Telemetry::disabled()),
            offset_us: AtomicI64::new(0),
            last_seen_us: AtomicU64::new(0),
            high_water_us: AtomicU64::new(0),
            events: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            lost_marked: AtomicBool::new(false),
        }
    }
}

impl RemoteStore {
    fn rpc(&self, req: &[u8]) -> Result<Bytes> {
        let mut guard = self.conn.lock();
        let conn = guard.as_mut().ok_or(ClusterError::NodeDead(self.node))?;
        let roundtrip = write_frame(conn, req).and_then(|()| read_frame(conn));
        match roundtrip {
            Ok(resp) => {
                // One clock read per RPC, traced workers only: the
                // liveness mark a later `worker.lost` event anchors to.
                if self.trace.enabled.load(Ordering::Relaxed) {
                    let now = self.trace.telemetry.lock().now_us();
                    self.trace.last_seen_us.store(now, Ordering::Relaxed);
                }
                Ok(resp)
            }
            Err(_) => {
                // Fail the connection permanently: a half-completed frame
                // exchange would desynchronize every later RPC.
                *guard = None;
                Err(ClusterError::NodeDead(self.node))
            }
        }
    }

    /// Switches the worker's trace ring on and estimates its clock offset
    /// with a minimum-RTT PING exchange: each round brackets the worker's
    /// reply `w` between coordinator reads `t0`/`t2`, and the round with
    /// the smallest RTT pins `offset = w - (t0 + t2) / 2`.
    fn enable_trace(&self, telemetry: &Telemetry) -> Result<()> {
        *self.trace.telemetry.lock() = telemetry.clone();
        let mut ctl = BytesMut::new();
        ctl.put_u8(op::TRACE_CTL);
        1u8.encode(&mut ctl);
        let resp = self.rpc(&ctl)?;
        self.expect_ok(resp)?;

        let mut best: Option<(u64, i64)> = None;
        for _ in 0..PING_ROUNDS {
            let mut ping = BytesMut::new();
            ping.put_u8(op::PING);
            let t0 = telemetry.now_us();
            let resp = self.rpc(&ping)?;
            let t2 = telemetry.now_us();
            let mut body = self.expect_ok(resp)?;
            let w_us = u64::decode(&mut body).map_err(|_| ClusterError::NodeDead(self.node))?;
            let rtt = t2.saturating_sub(t0);
            let offset = w_us as i64 - ((t0 + t2) / 2) as i64;
            if best.is_none_or(|(r, _)| rtt < r) {
                best = Some((rtt, offset));
            }
        }
        let (_, offset) = best.expect("PING_ROUNDS > 0");
        self.trace.offset_us.store(offset, Ordering::Relaxed);
        self.trace.last_seen_us.store(telemetry.now_us(), Ordering::Relaxed);
        self.trace.enabled.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Drains the worker's ring into `telemetry`, rebasing each event's
    /// worker-clock timestamp onto the coordinator epoch and clamping the
    /// lane monotone. A dead worker gets a one-time `worker.lost` mark at
    /// its last observed liveness instead.
    fn drain_trace(&self, telemetry: &Telemetry) {
        if !self.trace.enabled.load(Ordering::Relaxed) {
            return;
        }
        let offset = self.trace.offset_us.load(Ordering::Relaxed);
        let node = self.node.0;
        let mut req = BytesMut::new();
        req.put_u8(op::TRACE_DRAIN);
        let drained = self.rpc(&req).and_then(|resp| self.expect_ok(resp)).and_then(|mut body| {
            WorkerTraceReport::decode(&mut body).map_err(|_| ClusterError::NodeDead(self.node))
        });
        match drained {
            Ok(report) => {
                self.trace.events.fetch_add(report.events.len() as u64, Ordering::Relaxed);
                self.trace.dropped.fetch_add(report.dropped, Ordering::Relaxed);
                let mut high = self.trace.high_water_us.load(Ordering::Relaxed);
                let events: Vec<TraceEvent> = report
                    .events
                    .iter()
                    .map(|ev| {
                        let rebased = (ev.at_us as i64 - offset).max(0) as u64;
                        let at_us = rebased.max(high);
                        high = at_us;
                        worker_trace_event(node, at_us, ev)
                    })
                    .collect();
                self.trace.high_water_us.store(high, Ordering::Relaxed);
                telemetry.merge_worker_events(events);
            }
            Err(_) => {
                // Worker unreachable (SIGKILL, broken socket): mark the
                // lane once, at the worker's last observed sign of life.
                if !self.trace.lost_marked.swap(true, Ordering::Relaxed) {
                    let last_seen = self.trace.last_seen_us.load(Ordering::Relaxed);
                    let at_us = last_seen.max(self.trace.high_water_us.load(Ordering::Relaxed));
                    telemetry.merge_worker_events([TraceEvent {
                        at_us,
                        kind: trace::kind::WORKER_LOST,
                        node,
                        detail: format!("worker unreachable; last heartbeat at {last_seen}us"),
                        ..TraceEvent::default()
                    }]);
                }
            }
        }
    }

    fn expect_ok(&self, mut resp: Bytes) -> Result<Bytes> {
        match u8::decode(&mut resp) {
            Ok(s) if s == status::OK => Ok(resp),
            Ok(s) if s == status::MISSING => Err(ClusterError::NoSuchFile(String::new())),
            _ => {
                *self.conn.lock() = None;
                Err(ClusterError::NodeDead(self.node))
            }
        }
    }
}

impl NodeStore for RemoteStore {
    fn put(&self, name: &str, data: Bytes) -> Result<()> {
        let mut req = BytesMut::new();
        req.put_u8(op::PUT);
        name.to_string().encode(&mut req);
        let len = data.len() as u64;
        data.encode(&mut req);
        let resp = self.rpc(&req)?;
        self.expect_ok(resp)?;
        self.stats.add(classify(name, false), len);
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Bytes> {
        let mut req = BytesMut::new();
        req.put_u8(op::GET);
        name.to_string().encode(&mut req);
        let resp = self.rpc(&req)?;
        let mut body = match self.expect_ok(resp) {
            Ok(body) => body,
            Err(ClusterError::NoSuchFile(_)) => {
                return Err(ClusterError::NoSuchFile(format!("{}:{name}", self.node)))
            }
            Err(e) => return Err(e),
        };
        let data = Bytes::decode(&mut body).map_err(|_| ClusterError::NodeDead(self.node))?;
        self.stats.add(classify(name, true), data.len() as u64);
        Ok(data)
    }

    fn remove(&self, name: &str) -> Result<()> {
        let mut req = BytesMut::new();
        req.put_u8(op::REMOVE);
        name.to_string().encode(&mut req);
        let resp = self.rpc(&req)?;
        self.expect_ok(resp)?;
        self.stats.add(classify(name, false), 0);
        Ok(())
    }

    fn remove_prefix(&self, prefix: &str) -> Result<()> {
        let mut req = BytesMut::new();
        req.put_u8(op::REMOVE_PREFIX);
        prefix.to_string().encode(&mut req);
        let resp = self.rpc(&req)?;
        self.expect_ok(resp)?;
        self.stats.add(WireClass::Other, 0);
        Ok(())
    }

    fn kill(&self) {
        // SIGKILL — the worker gets no chance to flush or reply, exactly
        // the failure mode Dean–Ghemawat recovery is specified against.
        if let Some(child) = self.child.lock().as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        *self.conn.lock() = None;
    }

    fn pid(&self) -> Option<u32> {
        Some(self.pid)
    }

    fn is_alive(&self) -> bool {
        match self.child.lock().as_mut() {
            Some(child) => matches!(child.try_wait(), Ok(None)),
            None => false,
        }
    }
}

/// The real-process transport: one spawned `pmr-worker` per node.
///
/// The coordinator binds a listener (Unix-domain socket by default, TCP
/// loopback on request), spawns the workers with the listener address,
/// and each worker connects back and identifies itself with a `HELLO`
/// frame. Dropping the transport shuts surviving workers down gracefully
/// and reaps every child.
pub struct MultiProcessTransport {
    stores: Vec<Arc<RemoteStore>>,
    stats: Arc<WireStats>,
    socket_path: Option<PathBuf>,
    /// Coordinator telemetry attached via [`Transport::set_telemetry`];
    /// disabled until then. Drains target this sink.
    telemetry: Mutex<Telemetry>,
}

/// Resolves the worker binary: the `PMR_WORKER_BIN` environment variable
/// when set, otherwise a `pmr-worker` next to (or above) the running
/// executable — which finds `target/<profile>/pmr-worker` both from
/// normal binaries and from test executables in `target/<profile>/deps`.
fn worker_binary() -> Result<PathBuf> {
    if let Ok(path) = std::env::var("PMR_WORKER_BIN") {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Ok(path);
        }
        return Err(ClusterError::Transport(format!(
            "PMR_WORKER_BIN points at a missing file: {}",
            path.display()
        )));
    }
    let exe = std::env::current_exe()
        .map_err(|e| ClusterError::Transport(format!("cannot locate current executable: {e}")))?;
    for dir in exe.ancestors().skip(1) {
        let candidate = dir.join("pmr-worker");
        if candidate.is_file() {
            return Ok(candidate);
        }
    }
    Err(ClusterError::Transport(
        "pmr-worker binary not found near the current executable; \
         build it (cargo build -p pmr-cluster --bin pmr-worker) or set PMR_WORKER_BIN"
            .to_string(),
    ))
}

enum Listener {
    #[cfg(unix)]
    Uds(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Conn> {
        match self {
            #[cfg(unix)]
            Listener::Uds(l) => l.accept().map(|(s, _)| Conn::Uds(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Listener::Uds(l) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }
}

static SOCKET_SEQ: AtomicU64 = AtomicU64::new(0);

impl MultiProcessTransport {
    /// Spawns `n` worker processes and completes the connection
    /// handshake. Fails (cleaning up every spawned child) if the worker
    /// binary is missing or any worker does not connect within the
    /// timeout.
    pub fn spawn(n: usize, mode: SocketMode) -> Result<Self> {
        let bin = worker_binary()?;
        let terr = |what: &str, e: io::Error| ClusterError::Transport(format!("{what}: {e}"));

        let (listener, addr, socket_path) = match mode {
            #[cfg(unix)]
            SocketMode::Uds => {
                let path = std::env::temp_dir().join(format!(
                    "pmr-{}-{}.sock",
                    std::process::id(),
                    SOCKET_SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                let _ = std::fs::remove_file(&path);
                let listener =
                    UnixListener::bind(&path).map_err(|e| terr("bind unix socket", e))?;
                let addr = path.display().to_string();
                (Listener::Uds(listener), addr, Some(path))
            }
            #[cfg(not(unix))]
            SocketMode::Uds => {
                return Err(ClusterError::Transport(
                    "unix-domain sockets are unavailable on this platform; use TCP".to_string(),
                ))
            }
            SocketMode::Tcp => {
                let listener =
                    TcpListener::bind("127.0.0.1:0").map_err(|e| terr("bind tcp socket", e))?;
                let addr =
                    listener.local_addr().map_err(|e| terr("tcp local addr", e))?.to_string();
                (Listener::Tcp(listener), addr, None)
            }
        };

        let mut children: Vec<Child> = Vec::with_capacity(n);
        let cleanup = |children: &mut Vec<Child>| {
            for child in children.iter_mut() {
                let _ = child.kill();
                let _ = child.wait();
            }
            if let Some(path) = &socket_path {
                let _ = std::fs::remove_file(path);
            }
        };
        for node in 0..n {
            let spawned = Command::new(&bin)
                .arg("--socket")
                .arg(&addr)
                .arg("--node")
                .arg(node.to_string())
                .arg("--mode")
                .arg(match mode {
                    SocketMode::Uds => "uds",
                    SocketMode::Tcp => "tcp",
                })
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::inherit())
                .spawn();
            match spawned {
                Ok(child) => children.push(child),
                Err(e) => {
                    cleanup(&mut children);
                    return Err(terr(&format!("spawn worker {node}"), e));
                }
            }
        }

        // Accept until every worker has said HELLO, with a hard deadline.
        listener.set_nonblocking(true).map_err(|e| terr("listener nonblocking", e))?;
        let deadline = Instant::now() + IO_TIMEOUT;
        let mut conns: Vec<Option<Conn>> = (0..n).map(|_| None).collect();
        let mut connected = 0usize;
        while connected < n {
            match listener.accept() {
                Ok(conn) => {
                    let accepted = (|| -> io::Result<(u64, Conn)> {
                        conn.set_read_timeout(Some(IO_TIMEOUT))?;
                        let mut conn = conn;
                        let mut hello = read_frame(&mut conn)?;
                        let opcode =
                            u8::decode(&mut hello).map_err(|e| proto_err(&e.to_string()))?;
                        if opcode != op::HELLO {
                            return Err(proto_err("expected HELLO"));
                        }
                        let node =
                            u64::decode(&mut hello).map_err(|e| proto_err(&e.to_string()))?;
                        Ok((node, conn))
                    })();
                    match accepted {
                        Ok((node, conn)) if (node as usize) < n => {
                            if conns[node as usize].replace(conn).is_none() {
                                connected += 1;
                            }
                        }
                        _ => {
                            cleanup(&mut children);
                            return Err(ClusterError::Transport(
                                "worker handshake failed".to_string(),
                            ));
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        cleanup(&mut children);
                        return Err(ClusterError::Transport(format!(
                            "timed out waiting for workers to connect ({connected}/{n})"
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    cleanup(&mut children);
                    return Err(terr("accept worker connection", e));
                }
            }
        }

        let stats = Arc::new(WireStats::default());
        let stores = children
            .into_iter()
            .zip(conns)
            .enumerate()
            .map(|(i, (child, conn))| {
                Arc::new(RemoteStore {
                    node: NodeId(i as u32),
                    pid: child.id(),
                    conn: Mutex::new(conn),
                    child: Mutex::new(Some(child)),
                    stats: Arc::clone(&stats),
                    trace: TraceState::default(),
                })
            })
            .collect();
        Ok(MultiProcessTransport {
            stores,
            stats,
            socket_path,
            telemetry: Mutex::new(Telemetry::disabled()),
        })
    }
}

impl Transport for MultiProcessTransport {
    fn name(&self) -> &'static str {
        "process"
    }

    fn is_distributed(&self) -> bool {
        true
    }

    fn num_nodes(&self) -> usize {
        self.stores.len()
    }

    fn store(&self, node: NodeId) -> Arc<dyn NodeStore> {
        Arc::clone(&self.stores[node.index()]) as Arc<dyn NodeStore>
    }

    fn wire_snapshot(&self) -> WireSnapshot {
        self.stats.snapshot()
    }

    fn workers(&self) -> Vec<WorkerInfo> {
        self.stores
            .iter()
            .map(|s| WorkerInfo {
                node: s.node,
                pid: s.pid,
                alive: s.is_alive(),
                offset_us: s.trace.offset_us.load(Ordering::Relaxed),
                trace_events: s.trace.events.load(Ordering::Relaxed),
                trace_dropped: s.trace.dropped.load(Ordering::Relaxed),
            })
            .collect()
    }

    fn set_telemetry(&self, telemetry: &Telemetry) {
        if !telemetry.is_enabled() {
            return;
        }
        *self.telemetry.lock() = telemetry.clone();
        for store in &self.stores {
            // A worker that fails the enable handshake is already dead to
            // the engine (its connection was failed permanently); tracing
            // simply proceeds without it.
            let _ = store.enable_trace(telemetry);
        }
    }

    fn drain_traces(&self) {
        let telemetry = self.telemetry.lock().clone();
        if !telemetry.is_enabled() {
            return;
        }
        for store in &self.stores {
            store.drain_trace(&telemetry);
        }
    }
}

impl Drop for MultiProcessTransport {
    fn drop(&mut self) {
        // Final drain: whatever the last job left in the worker rings
        // still makes it into the merged trace before the sockets close.
        self.drain_traces();
        for store in &self.stores {
            // Polite shutdown first so healthy workers exit on their own…
            let mut req = BytesMut::new();
            req.put_u8(op::SHUTDOWN);
            let _ = store.rpc(&req);
            // …then make sure, and reap.
            store.kill();
        }
        if let Some(path) = &self.socket_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_follows_engine_naming() {
        assert_eq!(classify("dfs/run/input-0/3", false), WireClass::Dfs);
        assert_eq!(classify("seed/dataset", false), WireClass::Seed);
        assert_eq!(classify("mr/3/m/1/spill/0/p/2", true), WireClass::Spill);
        assert_eq!(classify("mr/3/cache/dataset", false), WireClass::Cache);
        assert_eq!(classify("mr/3/m/1/p/2", false), WireClass::MapOutput);
        assert_eq!(classify("mr/3/m/1/p/2", true), WireClass::Shuffle);
        assert_eq!(classify("scratch", false), WireClass::Other);
    }

    #[test]
    fn in_process_store_roundtrip_and_kill() {
        let store = InProcessStore::new(NodeId(0));
        store.put("a/b", Bytes::from_static(b"xy")).unwrap();
        assert_eq!(store.get("a/b").unwrap(), Bytes::from_static(b"xy"));
        assert!(matches!(store.get("a/c"), Err(ClusterError::NoSuchFile(_))));
        store.remove_prefix("a/").unwrap();
        assert!(store.get("a/b").is_err());
        assert!(store.is_alive());
        store.kill();
        assert!(!store.is_alive());
        assert!(matches!(store.get("a/b"), Err(ClusterError::NodeDead(_))));
        assert!(matches!(store.put("a/b", Bytes::new()), Err(ClusterError::NodeDead(_))));
    }

    #[test]
    fn frame_roundtrip_and_oversize_rejection() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), Bytes::from_static(b"hello"));

        // A header promising more than MAX_FRAME_LEN is rejected before
        // any allocation happens.
        let huge = (u32::MAX).to_be_bytes().to_vec();
        let mut r = io::Cursor::new(huge);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn class_codes_roundtrip_to_series_names() {
        let classes = [
            WireClass::Dfs,
            WireClass::Seed,
            WireClass::Cache,
            WireClass::Spill,
            WireClass::MapOutput,
            WireClass::Shuffle,
            WireClass::Other,
        ];
        let names: Vec<&str> = classes.iter().map(|c| class_name(class_code(*c))).collect();
        assert_eq!(names, vec!["dfs", "seed", "cache", "spill", "map_output", "shuffle", "other"]);
        // Every series key is reachable from a class code and vice versa.
        let series = WireSnapshot::default().series();
        assert_eq!(series.iter().map(|(k, _)| *k).collect::<Vec<_>>(), names);
    }

    #[test]
    fn worker_trace_report_roundtrips_on_the_wire() {
        let report = WorkerTraceReport {
            dropped: 3,
            events: vec![
                WorkerTraceEvent {
                    opcode: op::PUT,
                    class: class_code(WireClass::MapOutput),
                    at_us: 1_000,
                    dur_us: 12,
                    bytes: 4096,
                    detail: String::new(),
                },
                WorkerTraceEvent {
                    opcode: 0,
                    class: class_code(WireClass::Other),
                    at_us: 51_000,
                    dur_us: 0,
                    bytes: 0,
                    detail: "ops=1 bytes=4096".to_string(),
                },
            ],
        };
        let back = WorkerTraceReport::from_bytes(report.to_bytes()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn worker_ring_is_bounded_and_drain_resets() {
        let mut trace = WorkerTrace::new();
        trace.enabled = true;
        for _ in 0..(WORKER_RING_CAPACITY + 10) {
            trace.push(WorkerTraceEvent {
                opcode: op::GET,
                class: 5,
                at_us: 0,
                dur_us: 0,
                bytes: 1,
                detail: String::new(),
            });
        }
        assert_eq!(trace.ring.len(), WORKER_RING_CAPACITY);
        assert_eq!(trace.dropped, 10);
        // Drain closes the batch with one final heartbeat (evicting one
        // more event from the already-full ring).
        let report = trace.drain();
        assert_eq!(report.events.len(), WORKER_RING_CAPACITY);
        assert_eq!(report.dropped, 11);
        let last = report.events.last().unwrap();
        assert_eq!(last.opcode, 0, "drain ends on a heartbeat");
        assert!(last.detail.contains("ops="));
        // A second drain starts from a clean ring: just its heartbeat.
        let again = trace.drain();
        assert_eq!(again.events.len(), 1);
        assert_eq!(again.events[0].opcode, 0);
        assert_eq!(again.dropped, 0);
    }

    #[test]
    fn worker_events_convert_onto_the_node_lane() {
        let ev = WorkerTraceEvent {
            opcode: op::GET,
            class: class_code(WireClass::Shuffle),
            at_us: 999,
            dur_us: 5,
            bytes: 128,
            detail: String::new(),
        };
        let out = worker_trace_event(2, 1_234, &ev);
        assert_eq!(out.kind, trace::kind::WORKER_GET);
        assert_eq!(out.node, 2);
        assert_eq!(out.at_us, 1_234, "caller-supplied rebased stamp wins");
        assert_eq!(out.phase, "shuffle");
        assert_eq!(out.bytes, 128);
        let hb = WorkerTraceEvent {
            opcode: 0,
            class: 6,
            at_us: 0,
            dur_us: 0,
            bytes: 0,
            detail: "ops=9 bytes=1".to_string(),
        };
        let out = worker_trace_event(0, 7, &hb);
        assert_eq!(out.kind, trace::kind::WORKER_HEARTBEAT);
        assert_eq!(out.phase, "");
        assert_eq!(out.detail, "ops=9 bytes=1");
    }

    #[test]
    fn wire_snapshot_delta_and_series() {
        let stats = WireStats::default();
        stats.add(WireClass::Shuffle, 100);
        let early = stats.snapshot();
        stats.add(WireClass::Shuffle, 50);
        stats.add(WireClass::Dfs, 7);
        let late = stats.snapshot();
        let delta = late.delta(&early);
        assert_eq!(delta.shuffle_bytes, 50);
        assert_eq!(delta.dfs_bytes, 7);
        assert_eq!(delta.frames, 4);
        assert_eq!(delta.total_bytes(), 57);
        let series = delta.series();
        assert_eq!(series.iter().find(|(k, _)| *k == "shuffle").unwrap().1, 50);
    }
}
