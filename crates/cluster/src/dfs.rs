//! An in-memory distributed file system.
//!
//! Models the premise of the paper's execution model (§3): "The input
//! dataset is stored as files, distributed on the participating nodes.
//! Random access to single elements may not be possible" — files are
//! immutable byte sequences split into fixed-size blocks, each replicated on
//! a few nodes; readers on non-replica nodes pay network cost; MapReduce
//! input splits are derived from block boundaries (record-aligned when the
//! writer recorded record offsets).
//!
//! Since the transport refactor, block *metadata* (offsets, lengths,
//! replica lists, record offsets) lives here on the coordinator while block
//! *payloads* live in the per-node [`NodeStore`]s under `dfs/…` keys — the
//! same stores that hold MapReduce intermediate files, so on the
//! multi-process transport DFS reads and re-replication physically cross
//! the worker sockets. DFS payloads are deliberately *unledgered*: they are
//! input data, not intermediate data, and must not count toward the
//! paper's `maxis` accounting.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::{Bytes, BytesMut};
use parking_lot::RwLock;
use pmr_obs::Telemetry;

use crate::error::{ClusterError, Result};
use crate::ids::NodeId;
use crate::network::{NetworkModel, TrafficAccountant};
use crate::transport::{InProcessStore, NodeStore};

/// One replicated block of a DFS file (metadata only — the payload lives
/// in the replica nodes' stores under `key`).
#[derive(Debug, Clone)]
struct DfsBlock {
    /// Byte offset of this block within the file.
    offset: u64,
    /// Payload length in bytes.
    len: u64,
    /// Store key of the payload on every replica node.
    key: String,
    replicas: Vec<NodeId>,
}

/// One immutable DFS file.
#[derive(Debug, Clone)]
struct DfsFile {
    blocks: Vec<DfsBlock>,
    len: u64,
    /// Byte offsets of record starts (ascending, starting at 0), when the
    /// writer supplied them. Enables record-aligned input splits.
    record_offsets: Option<Arc<Vec<u64>>>,
}

/// A contiguous slice of a DFS file assigned to one map task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputSplit {
    /// File the split belongs to.
    pub path: String,
    /// Starting byte offset.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Nodes holding a replica of the split's first block — scheduling
    /// there makes the read local.
    pub preferred_nodes: Vec<NodeId>,
}

/// The distributed file system.
///
/// ```
/// use bytes::Bytes;
/// use pmr_cluster::Dfs;
///
/// let dfs = Dfs::new(4, 16, 2); // 4 nodes, 16-B blocks, 2 replicas
/// dfs.create("data", Bytes::from(vec![7u8; 100])).unwrap();
/// assert_eq!(dfs.len("data").unwrap(), 100);
/// let splits = dfs.splits("data", 3).unwrap();
/// assert_eq!(splits.iter().map(|s| s.len).sum::<u64>(), 100);
/// ```
pub struct Dfs {
    block_size: u64,
    replication: usize,
    num_nodes: usize,
    files: RwLock<HashMap<String, DfsFile>>,
    /// Per-node payload stores, indexed by node id.
    stores: Vec<Arc<dyn NodeStore>>,
    placement: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    /// `dead[i]` is set once node `i` crashes: it receives no new replicas
    /// and its existing replicas are re-replicated elsewhere.
    dead: RwLock<Vec<bool>>,
    telemetry: Telemetry,
}

impl std::fmt::Debug for Dfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dfs")
            .field("block_size", &self.block_size)
            .field("replication", &self.replication)
            .field("num_nodes", &self.num_nodes)
            .field("files", &self.files.read().len())
            .finish()
    }
}

impl Dfs {
    /// Creates a self-contained DFS over `num_nodes` nodes, with private
    /// in-process payload stores (test/driver use).
    pub fn new(num_nodes: usize, block_size: u64, replication: usize) -> Dfs {
        let stores = (0..num_nodes)
            .map(|i| Arc::new(InProcessStore::new(NodeId(i as u32))) as Arc<dyn NodeStore>)
            .collect();
        Dfs::with_stores(block_size, replication, stores)
    }

    /// Creates a DFS whose block payloads live in the given per-node
    /// transport stores (one per node, indexed by node id). This is how
    /// [`crate::Cluster`] shares a single set of stores between the DFS and
    /// node-local intermediate files.
    pub fn with_stores(
        block_size: u64,
        replication: usize,
        stores: Vec<Arc<dyn NodeStore>>,
    ) -> Dfs {
        let num_nodes = stores.len();
        assert!(num_nodes > 0 && block_size > 0 && replication > 0);
        Dfs {
            block_size,
            replication: replication.min(num_nodes),
            num_nodes,
            files: RwLock::new(HashMap::new()),
            stores,
            placement: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            dead: RwLock::new(vec![false; num_nodes]),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Nodes currently eligible to hold replicas.
    fn live_nodes(&self) -> Vec<NodeId> {
        let dead = self.dead.read();
        (0..self.num_nodes as u32).map(NodeId).filter(|n| !dead[n.index()]).collect()
    }

    /// True iff the node has not crashed (from the DFS's point of view).
    pub fn is_node_live(&self, node: NodeId) -> bool {
        !self.dead.read()[node.index()]
    }

    /// Attaches a telemetry handle: every subsequent block-replica
    /// placement is also emitted as a telemetry event.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Creates an immutable file. Fails if the path exists.
    pub fn create(&self, path: &str, data: Bytes) -> Result<()> {
        self.create_with_records(path, data, None)
    }

    /// Creates an immutable file and remembers record-start offsets so
    /// [`Dfs::splits`] can cut on record boundaries.
    ///
    /// `record_offsets` must be ascending and start at 0 (checked with
    /// `debug_assert`); pass `None` for raw byte files.
    pub fn create_with_records(
        &self,
        path: &str,
        data: Bytes,
        record_offsets: Option<Vec<u64>>,
    ) -> Result<()> {
        if let Some(offs) = &record_offsets {
            debug_assert!(offs.windows(2).all(|w| w[0] < w[1]), "record offsets must ascend");
            debug_assert!(offs.first().is_none_or(|&o| o == 0));
            debug_assert!(offs.last().is_none_or(|&o| o <= data.len() as u64));
        }
        let mut files = self.files.write();
        if files.contains_key(path) {
            return Err(ClusterError::FileExists(path.to_string()));
        }
        let len = data.len() as u64;
        let mut blocks = Vec::new();
        let mut off = 0u64;
        // Replicas only land on live nodes. When nothing has crashed this
        // reduces exactly to round-robin over all nodes.
        let live = self.live_nodes();
        assert!(!live.is_empty(), "cannot create DFS files with every node dead");
        let replication = self.replication.min(live.len());
        // Zero-length files get a single empty block so they still have a
        // placement (and splits() yields nothing).
        loop {
            let end = (off + self.block_size).min(len);
            let slice = data.slice(off as usize..end as usize);
            let start = self.placement.fetch_add(1, Ordering::Relaxed) as usize;
            let replicas: Vec<NodeId> =
                (0..replication).map(|i| live[(start + i) % live.len()]).collect();
            let key = format!("dfs/{path}/{off}");
            for r in &replicas {
                self.telemetry.placement(r.0, slice.len() as u64);
                if !slice.is_empty() {
                    self.stores[r.index()].put(&key, slice.clone())?;
                }
            }
            blocks.push(DfsBlock { offset: off, len: slice.len() as u64, key, replicas });
            off = end;
            if off >= len {
                break;
            }
        }
        self.bytes_written.fetch_add(len, Ordering::Relaxed);
        files.insert(
            path.to_string(),
            DfsFile { blocks, len, record_offsets: record_offsets.map(Arc::new) },
        );
        Ok(())
    }

    /// Fetches one block's payload, preferring the reader-local replica and
    /// falling back across the remaining replicas when a store has died
    /// under us (replica-resilient read).
    fn fetch_block(&self, b: &DfsBlock, reader: Option<NodeId>) -> Result<Bytes> {
        if b.len == 0 {
            return Ok(Bytes::new());
        }
        let local = reader.filter(|r| b.replicas.contains(r));
        let rest = b.replicas.iter().copied().filter(|r| Some(*r) != local);
        for r in local.into_iter().chain(rest) {
            if let Ok(data) = self.stores[r.index()].get(&b.key) {
                return Ok(data);
            }
        }
        Err(ClusterError::NoSuchFile(format!("dfs block {}", b.key)))
    }

    /// Concatenates `[offset, offset+len)` out of a file's blocks.
    fn concat_range(
        &self,
        f: &DfsFile,
        offset: u64,
        len: u64,
        reader: Option<NodeId>,
    ) -> Result<Bytes> {
        if len == 0 {
            return Ok(Bytes::new());
        }
        // Fast path: a single block covers the whole range.
        for b in &f.blocks {
            if b.offset <= offset && offset + len <= b.offset + b.len {
                let data = self.fetch_block(b, reader)?;
                let s = (offset - b.offset) as usize;
                return Ok(data.slice(s..s + len as usize));
            }
        }
        let mut out = BytesMut::with_capacity(len as usize);
        for b in &f.blocks {
            let b_end = b.offset + b.len;
            if b_end <= offset || b.offset >= offset + len {
                continue;
            }
            let data = self.fetch_block(b, reader)?;
            let s = offset.max(b.offset);
            let e = b_end.min(offset + len);
            out.extend_from_slice(&data[(s - b.offset) as usize..(e - b.offset) as usize]);
        }
        Ok(out.freeze())
    }

    /// True iff the path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    /// File length in bytes.
    pub fn len(&self, path: &str) -> Result<u64> {
        self.files
            .read()
            .get(path)
            .map(|f| f.len)
            .ok_or_else(|| ClusterError::NoSuchFile(path.to_string()))
    }

    /// True iff no files exist.
    pub fn is_empty(&self) -> bool {
        self.files.read().is_empty()
    }

    /// Reads a whole file without network accounting (test/driver use).
    pub fn read(&self, path: &str) -> Result<Bytes> {
        let files = self.files.read();
        let f = files.get(path).ok_or_else(|| ClusterError::NoSuchFile(path.to_string()))?;
        self.concat_range(f, 0, f.len, None)
    }

    /// Reads `[offset, offset+len)` of a file as node `reader`, charging
    /// network cost for every block that has no replica on `reader`.
    pub fn read_range_from(
        &self,
        path: &str,
        offset: u64,
        len: u64,
        reader: NodeId,
        traffic: &TrafficAccountant,
        model: &NetworkModel,
    ) -> Result<Bytes> {
        let files = self.files.read();
        let f = files.get(path).ok_or_else(|| ClusterError::NoSuchFile(path.to_string()))?;
        assert!(offset + len <= f.len, "read past end of {path}");
        for b in &f.blocks {
            let b_end = b.offset + b.len;
            if b_end <= offset || b.offset >= offset + len || b.len == 0 {
                continue;
            }
            let overlap = b_end.min(offset + len) - b.offset.max(offset);
            // Replica lists only ever reference live nodes (crash handling
            // rewrites them), so the first replica is a valid remote source.
            let src = if b.replicas.contains(&reader) {
                reader
            } else {
                b.replicas.first().copied().unwrap_or(reader)
            };
            traffic.record(model, src, reader, overlap);
        }
        self.bytes_read.fetch_add(len, Ordering::Relaxed);
        self.concat_range(f, offset, len, Some(reader))
    }

    /// Record-start offsets stored for a file, if any.
    pub fn record_offsets(&self, path: &str) -> Result<Option<Arc<Vec<u64>>>> {
        let files = self.files.read();
        let f = files.get(path).ok_or_else(|| ClusterError::NoSuchFile(path.to_string()))?;
        Ok(f.record_offsets.clone())
    }

    /// Deletes a file (idempotent), dropping its payloads from the replica
    /// stores (best-effort — a dead replica has already lost them).
    pub fn delete(&self, path: &str) {
        if let Some(f) = self.files.write().remove(path) {
            for b in &f.blocks {
                if b.len == 0 {
                    continue;
                }
                for r in &b.replicas {
                    let _ = self.stores[r.index()].remove(&b.key);
                }
            }
        }
    }

    /// Lists paths with the given prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let mut v: Vec<String> =
            self.files.read().keys().filter(|k| k.starts_with(prefix)).cloned().collect();
        v.sort();
        v
    }

    /// Splits a file into about `desired` contiguous ranges for map tasks.
    ///
    /// Boundaries are aligned to record starts when the file has record
    /// offsets (no record is ever split across two map tasks), otherwise to
    /// block boundaries. Every byte belongs to exactly one split.
    pub fn splits(&self, path: &str, desired: usize) -> Result<Vec<InputSplit>> {
        let files = self.files.read();
        let f = files.get(path).ok_or_else(|| ClusterError::NoSuchFile(path.to_string()))?;
        if f.len == 0 {
            return Ok(Vec::new());
        }
        let desired = desired.max(1) as u64;
        let target = f.len.div_ceil(desired);

        // Candidate boundaries: record starts if present, else block starts.
        let boundaries: Vec<u64> = match &f.record_offsets {
            Some(offs) => offs.as_ref().clone(),
            None => f.blocks.iter().map(|b| b.offset).collect(),
        };

        let mut splits = Vec::new();
        let mut start = 0u64;
        while start < f.len {
            let want_end = start + target;
            // Smallest boundary ≥ want_end, or EOF.
            let end = if want_end >= f.len {
                f.len
            } else {
                match boundaries.binary_search(&want_end) {
                    Ok(i) => boundaries[i],
                    Err(i) if i < boundaries.len() => boundaries[i],
                    Err(_) => f.len,
                }
            };
            let end = end.max(start + 1).min(f.len);
            let first_block =
                f.blocks.iter().find(|b| b.offset + b.len.max(1) > start).unwrap_or(&f.blocks[0]);
            splits.push(InputSplit {
                path: path.to_string(),
                offset: start,
                len: end - start,
                preferred_nodes: first_block.replicas.clone(),
            });
            start = end;
        }
        Ok(splits)
    }

    /// Handles a node crash: marks the node dead, strips it from every
    /// block's replica list, and re-replicates under-replicated blocks onto
    /// live nodes — physically copying the payload from a surviving
    /// replica's store into the new replica's store, charging the copy
    /// traffic (surviving replica → new replica) through `traffic`. Returns
    /// `(blocks re-replicated, bytes re-replicated)`. Idempotent per node.
    pub fn handle_node_crash(
        &self,
        victim: NodeId,
        traffic: &TrafficAccountant,
        model: &NetworkModel,
    ) -> (u64, u64) {
        {
            let mut dead = self.dead.write();
            if dead[victim.index()] {
                return (0, 0);
            }
            dead[victim.index()] = true;
        }
        let live = self.live_nodes();
        if live.is_empty() {
            // Nothing left to copy to; data on the victim is simply lost.
            return (0, 0);
        }
        let target = self.replication.min(live.len());
        let mut files = self.files.write();
        let mut blocks_fixed = 0u64;
        let mut bytes_fixed = 0u64;
        for f in files.values_mut() {
            for b in f.blocks.iter_mut() {
                let before = b.replicas.len();
                b.replicas.retain(|r| *r != victim);
                if b.replicas.len() == before {
                    continue;
                }
                while b.replicas.len() < target {
                    let start = self.placement.fetch_add(1, Ordering::Relaxed) as usize;
                    let Some(dst) = (0..live.len())
                        .map(|i| live[(start + i) % live.len()])
                        .find(|n| !b.replicas.contains(n))
                    else {
                        break;
                    };
                    let len = b.len;
                    // Copy from a surviving replica when one exists; an
                    // empty block costs nothing to restore.
                    if len > 0 {
                        let Some((src, data)) = b
                            .replicas
                            .iter()
                            .find_map(|&r| self.stores[r.index()].get(&b.key).ok().map(|d| (r, d)))
                        else {
                            // No surviving replica still holds the payload;
                            // the block is lost and cannot be restored.
                            break;
                        };
                        if self.stores[dst.index()].put(&b.key, data).is_err() {
                            break;
                        }
                        traffic.record(model, src, dst, len);
                    }
                    self.telemetry.placement(dst.0, len);
                    b.replicas.push(dst);
                    blocks_fixed += 1;
                    bytes_fixed += len;
                }
            }
        }
        drop(files);
        if blocks_fixed > 0 {
            self.telemetry.event_traced(
                "dfs.rereplicate",
                victim.0,
                0,
                format!(
                    "restored replication after {victim}: {blocks_fixed} blocks \
                     ({bytes_fixed} B) copied onto live nodes"
                ),
            );
        }
        (blocks_fixed, bytes_fixed)
    }

    /// Sum of all file lengths currently stored.
    pub fn total_bytes(&self) -> u64 {
        self.files.read().values().map(|f| f.len).sum()
    }

    /// Cumulative bytes written since creation.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Cumulative bytes read since creation.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dfs() -> Dfs {
        Dfs::new(4, 16, 2)
    }

    #[test]
    fn create_read_roundtrip() {
        let d = dfs();
        let data = Bytes::from((0..100u8).collect::<Vec<_>>());
        d.create("f", data.clone()).unwrap();
        assert_eq!(d.read("f").unwrap(), data);
        assert_eq!(d.len("f").unwrap(), 100);
        assert!(d.exists("f"));
        assert_eq!(d.total_bytes(), 100);
    }

    #[test]
    fn duplicate_create_rejected() {
        let d = dfs();
        d.create("f", Bytes::from_static(b"x")).unwrap();
        assert!(matches!(d.create("f", Bytes::new()), Err(ClusterError::FileExists(_))));
    }

    #[test]
    fn ranged_reads_cross_blocks() {
        let d = dfs(); // block size 16
        let data: Vec<u8> = (0..64).collect();
        d.create("f", Bytes::from(data.clone())).unwrap();
        let t = TrafficAccountant::new();
        let m = NetworkModel::default();
        let got = d.read_range_from("f", 10, 30, NodeId(0), &t, &m).unwrap();
        assert_eq!(&got[..], &data[10..40]);
    }

    #[test]
    fn remote_reads_charge_network() {
        let d = Dfs::new(4, 16, 1); // replication 1: most blocks are remote
        d.create("f", Bytes::from(vec![7u8; 64])).unwrap();
        let t = TrafficAccountant::new();
        let m = NetworkModel::default();
        d.read_range_from("f", 0, 64, NodeId(3), &t, &m).unwrap();
        // 4 blocks with single replicas on nodes 0..3 round-robin; exactly
        // one is local to node 3.
        assert_eq!(t.remote_bytes(), 48);
        assert_eq!(t.local_bytes(), 16);
    }

    #[test]
    fn splits_cover_file_exactly_once() {
        let d = dfs();
        d.create("f", Bytes::from(vec![1u8; 100])).unwrap();
        for desired in [1usize, 2, 3, 7, 100] {
            let splits = d.splits("f", desired).unwrap();
            assert!(!splits.is_empty());
            let mut pos = 0;
            for s in &splits {
                assert_eq!(s.offset, pos, "desired={desired}");
                assert!(s.len > 0);
                pos += s.len;
            }
            assert_eq!(pos, 100, "desired={desired}");
        }
    }

    #[test]
    fn record_aligned_splits_never_cut_records() {
        let d = Dfs::new(2, 8, 1);
        // Ten 7-byte records.
        let offsets: Vec<u64> = (0..10).map(|i| i * 7).collect();
        d.create_with_records("f", Bytes::from(vec![0u8; 70]), Some(offsets.clone())).unwrap();
        let splits = d.splits("f", 4).unwrap();
        let mut pos = 0;
        for s in &splits {
            assert!(offsets.contains(&s.offset) || s.offset == 0);
            pos = s.offset + s.len;
        }
        assert_eq!(pos, 70);
        // Every split boundary is a record start.
        for s in &splits[1..] {
            assert!(offsets.contains(&s.offset), "offset {} not a record start", s.offset);
        }
    }

    #[test]
    fn empty_file_yields_no_splits() {
        let d = dfs();
        d.create("e", Bytes::new()).unwrap();
        assert!(d.splits("e", 4).unwrap().is_empty());
        assert_eq!(d.read("e").unwrap().len(), 0);
    }

    #[test]
    fn list_and_delete() {
        let d = dfs();
        d.create("dir/a", Bytes::from_static(b"1")).unwrap();
        d.create("dir/b", Bytes::from_static(b"2")).unwrap();
        d.create("other", Bytes::from_static(b"3")).unwrap();
        assert_eq!(d.list("dir/"), vec!["dir/a", "dir/b"]);
        d.delete("dir/a");
        assert!(!d.exists("dir/a"));
        assert_eq!(d.total_bytes(), 2);
    }

    #[test]
    fn crash_re_replicates_and_charges_traffic() {
        let d = Dfs::new(4, 16, 2);
        d.create("f", Bytes::from(vec![3u8; 64])).unwrap(); // 4 blocks × 2 replicas
        let t = TrafficAccountant::new();
        let m = NetworkModel::default();
        let (blocks, bytes) = d.handle_node_crash(NodeId(0), &t, &m);
        assert!(blocks > 0, "node 0 held at least one replica");
        assert_eq!(bytes, blocks * 16);
        assert_eq!(t.remote_bytes(), bytes, "every restored copy is a remote transfer");
        assert!(!d.is_node_live(NodeId(0)));
        // All replica lists now reference live nodes only, at full
        // replication, and reads still return the data.
        for s in d.splits("f", 4).unwrap() {
            assert_eq!(s.preferred_nodes.len(), 2);
            assert!(!s.preferred_nodes.contains(&NodeId(0)));
        }
        assert_eq!(d.read("f").unwrap(), Bytes::from(vec![3u8; 64]));
        // Idempotent: a second crash of the same node does nothing.
        assert_eq!(d.handle_node_crash(NodeId(0), &t, &m), (0, 0));
    }

    #[test]
    fn new_files_avoid_dead_nodes() {
        let d = Dfs::new(3, 16, 2);
        let t = TrafficAccountant::new();
        let m = NetworkModel::default();
        d.handle_node_crash(NodeId(1), &t, &m);
        d.create("f", Bytes::from(vec![0u8; 48])).unwrap();
        for s in d.splits("f", 3).unwrap() {
            assert!(!s.preferred_nodes.contains(&NodeId(1)));
        }
    }

    #[test]
    fn replication_capped_at_cluster_size() {
        let d = Dfs::new(2, 16, 5);
        d.create("f", Bytes::from(vec![0u8; 16])).unwrap();
        let splits = d.splits("f", 1).unwrap();
        assert_eq!(splits[0].preferred_nodes.len(), 2);
    }

    #[test]
    fn payloads_live_in_replica_stores_and_survive_one_store_loss() {
        let stores: Vec<Arc<dyn NodeStore>> = (0..3)
            .map(|i| Arc::new(InProcessStore::new(NodeId(i))) as Arc<dyn NodeStore>)
            .collect();
        let d = Dfs::with_stores(16, 2, stores.clone());
        let data = Bytes::from((0..48u8).collect::<Vec<_>>());
        d.create("f", data.clone()).unwrap();
        // Every block payload physically lives under a `dfs/` key on
        // exactly its replicas.
        let held: usize = stores
            .iter()
            .map(|s| {
                ["dfs/f/0", "dfs/f/16", "dfs/f/32"].iter().filter(|k| s.get(k).is_ok()).count()
            })
            .sum();
        assert_eq!(held, 6, "3 blocks x 2 replicas");
        // Killing one store: reads fall back to the surviving replica.
        stores[0].kill();
        assert_eq!(d.read("f").unwrap(), data);
        // Deleting drops payloads from the surviving stores.
        d.delete("f");
        assert!(stores[1].get("dfs/f/0").is_err() && stores[2].get("dfs/f/0").is_err());
    }
}
