//! A worker node: coordinator-side storage ledger over a transport-backed
//! payload store.
//!
//! Nodes hold (a) DFS block replicas and (b) node-local files — the
//! materialized intermediate data of MapReduce (map outputs waiting to be
//! shuffled, distributed-cache copies). The paper's `maxis` limit is about
//! exactly this intermediate data; each node additionally has its own
//! capacity.
//!
//! Since the transport refactor the node is split in two: the *ledger*
//! (which files exist, their sizes, the capacity/peak accounting, the
//! alive flag) lives here on the coordinator, while the payload bytes live
//! in a [`NodeStore`] — an in-process map on the simulated transport, a
//! spawned worker process on the multi-process one. Every capacity
//! decision and every `NoSuchFile`/`NodeDead` distinction is made from the
//! ledger, which is what keeps behavior and all charged numbers identical
//! across transports.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use crate::error::{ClusterError, Result};
use crate::ids::NodeId;
use crate::transport::{InProcessStore, NodeStore};

/// One worker node (ledger + payload store).
pub struct Node {
    id: NodeId,
    storage_capacity: Option<u64>,
    /// File name → payload length. The single source of truth for
    /// existence and accounting; the store holds the bytes.
    ledger: RwLock<HashMap<String, u64>>,
    store: Arc<dyn NodeStore>,
    storage_used: AtomicU64,
    storage_peak: AtomicU64,
    alive: AtomicBool,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.id)
            .field("storage_capacity", &self.storage_capacity)
            .field("files", &self.ledger.read().len())
            .field("alive", &self.is_alive())
            .finish()
    }
}

impl Node {
    /// Creates a node with the given local-storage capacity, backed by a
    /// private in-process store.
    pub fn new(id: NodeId, storage_capacity: Option<u64>) -> Node {
        Node::with_store(id, storage_capacity, Arc::new(InProcessStore::new(id)))
    }

    /// Creates a node whose payloads live in the given transport store.
    pub fn with_store(
        id: NodeId,
        storage_capacity: Option<u64>,
        store: Arc<dyn NodeStore>,
    ) -> Node {
        Node {
            id,
            storage_capacity,
            ledger: RwLock::new(HashMap::new()),
            store,
            storage_used: AtomicU64::new(0),
            storage_peak: AtomicU64::new(0),
            alive: AtomicBool::new(true),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// True until the node crashes.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Crashes the node: every local file is lost and all subsequent reads
    /// and writes fail with [`ClusterError::NodeDead`]. On the
    /// multi-process transport this SIGKILLs the worker process. Returns
    /// `(files lost, bytes lost)`. Idempotent — crashing a dead node loses
    /// nothing further.
    pub fn crash(&self) -> (usize, u64) {
        // Take the ledger lock before flipping the flag so a concurrent
        // write either completes (and is wiped here) or observes the dead
        // flag and fails.
        let mut ledger = self.ledger.write();
        if !self.alive.swap(false, Ordering::SeqCst) {
            return (0, 0);
        }
        let lost_files = ledger.len();
        let lost_bytes = self.storage_used.swap(0, Ordering::SeqCst);
        ledger.clear();
        self.store.kill();
        (lost_files, lost_bytes)
    }

    /// Writes (or overwrites) a node-local file, enforcing the storage
    /// capacity. Overwriting releases the old bytes first. Fails with
    /// [`ClusterError::NodeDead`] once the node has crashed (or, on the
    /// multi-process transport, when the worker process is gone).
    pub fn write_local(&self, name: &str, data: Bytes) -> Result<()> {
        let new_len = data.len() as u64;
        let mut ledger = self.ledger.write();
        if !self.is_alive() {
            return Err(ClusterError::NodeDead(self.id));
        }
        let old_len = ledger.get(name).copied().unwrap_or(0);
        let cur = self.storage_used.load(Ordering::Relaxed);
        let next = cur - old_len + new_len;
        if let Some(cap) = self.storage_capacity {
            if next > cap {
                return Err(ClusterError::NodeStorageExceeded {
                    node: self.id,
                    requested: next,
                    capacity: cap,
                });
            }
        }
        self.store.put(name, data)?;
        ledger.insert(name.to_string(), new_len);
        self.storage_used.store(next, Ordering::Relaxed);
        self.storage_peak.fetch_max(next, Ordering::Relaxed);
        Ok(())
    }

    /// Reads a node-local file. Fails with [`ClusterError::NodeDead`] once
    /// the node has crashed — a missing file on a *live* node is
    /// `NoSuchFile`, so callers can distinguish "genuinely absent" from
    /// "lost with the node".
    pub fn read_local(&self, name: &str) -> Result<Bytes> {
        let ledger = self.ledger.read();
        if !self.is_alive() {
            return Err(ClusterError::NodeDead(self.id));
        }
        if !ledger.contains_key(name) {
            return Err(ClusterError::NoSuchFile(format!("{}:{}", self.id, name)));
        }
        // Ledger says the file exists; a store failure here means the
        // worker died under us, which is a node death to the caller.
        match self.store.get(name) {
            Ok(data) => Ok(data),
            Err(_) => Err(ClusterError::NodeDead(self.id)),
        }
    }

    /// Deletes a node-local file, releasing its bytes. Missing files are
    /// ignored (idempotent, like task-cleanup in real frameworks).
    pub fn delete_local(&self, name: &str) {
        let mut ledger = self.ledger.write();
        if let Some(old_len) = ledger.remove(name) {
            self.storage_used.fetch_sub(old_len, Ordering::Relaxed);
            let _ = self.store.remove(name);
        }
    }

    /// Deletes all local files whose name starts with `prefix`; returns the
    /// number of files removed.
    pub fn delete_local_prefix(&self, prefix: &str) -> usize {
        let mut ledger = self.ledger.write();
        let victims: Vec<String> =
            ledger.keys().filter(|k| k.starts_with(prefix)).cloned().collect();
        for v in &victims {
            if let Some(old_len) = ledger.remove(v) {
                self.storage_used.fetch_sub(old_len, Ordering::Relaxed);
            }
        }
        if !victims.is_empty() {
            let _ = self.store.remove_prefix(prefix);
        }
        victims.len()
    }

    /// Lists local file names with the given prefix, sorted.
    pub fn list_local(&self, prefix: &str) -> Vec<String> {
        let mut names: Vec<String> =
            self.ledger.read().keys().filter(|k| k.starts_with(prefix)).cloned().collect();
        names.sort();
        names
    }

    /// Bytes currently held in node-local files.
    pub fn storage_used(&self) -> u64 {
        self.storage_used.load(Ordering::Relaxed)
    }

    /// Peak bytes held over the node's lifetime.
    pub fn storage_peak(&self) -> u64 {
        self.storage_peak.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_delete_roundtrip() {
        let n = Node::new(NodeId(0), None);
        n.write_local("a", Bytes::from_static(b"hello")).unwrap();
        assert_eq!(n.read_local("a").unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(n.storage_used(), 5);
        n.delete_local("a");
        assert_eq!(n.storage_used(), 0);
        assert!(n.read_local("a").is_err());
    }

    #[test]
    fn overwrite_releases_old_bytes() {
        let n = Node::new(NodeId(0), Some(10));
        n.write_local("f", Bytes::from(vec![0u8; 8])).unwrap();
        // Overwriting with 10 bytes fits because the old 8 are released.
        n.write_local("f", Bytes::from(vec![0u8; 10])).unwrap();
        assert_eq!(n.storage_used(), 10);
        assert_eq!(n.storage_peak(), 10);
    }

    #[test]
    fn capacity_enforced() {
        let n = Node::new(NodeId(1), Some(10));
        n.write_local("a", Bytes::from(vec![0u8; 6])).unwrap();
        let err = n.write_local("b", Bytes::from(vec![0u8; 5])).unwrap_err();
        assert!(matches!(err, ClusterError::NodeStorageExceeded { capacity: 10, .. }));
        // Failed write leaves state unchanged.
        assert_eq!(n.storage_used(), 6);
        assert!(n.read_local("b").is_err());
    }

    #[test]
    fn crash_loses_files_and_rejects_io() {
        let n = Node::new(NodeId(2), None);
        n.write_local("a", Bytes::from_static(b"hello")).unwrap();
        assert!(n.is_alive());
        assert_eq!(n.crash(), (1, 5));
        assert!(!n.is_alive());
        assert_eq!(n.storage_used(), 0);
        assert_eq!(n.storage_peak(), 5, "peak survives the crash for reporting");
        assert!(matches!(n.read_local("a"), Err(ClusterError::NodeDead(NodeId(2)))));
        assert!(matches!(
            n.write_local("b", Bytes::from_static(b"x")),
            Err(ClusterError::NodeDead(NodeId(2)))
        ));
        // Crashing again loses nothing further.
        assert_eq!(n.crash(), (0, 0));
    }

    #[test]
    fn prefix_operations() {
        let n = Node::new(NodeId(0), None);
        n.write_local("job1/part0", Bytes::from_static(b"x")).unwrap();
        n.write_local("job1/part1", Bytes::from_static(b"y")).unwrap();
        n.write_local("job2/part0", Bytes::from_static(b"z")).unwrap();
        assert_eq!(n.list_local("job1/"), vec!["job1/part0", "job1/part1"]);
        assert_eq!(n.delete_local_prefix("job1/"), 2);
        assert_eq!(n.storage_used(), 1);
    }

    #[test]
    fn ledger_and_store_stay_consistent() {
        let store = Arc::new(InProcessStore::new(NodeId(3)));
        let n = Node::with_store(NodeId(3), None, store.clone() as Arc<dyn NodeStore>);
        n.write_local("x", Bytes::from_static(b"abc")).unwrap();
        // The payload physically lives in the store.
        assert_eq!(store.get("x").unwrap(), Bytes::from_static(b"abc"));
        n.delete_local("x");
        assert!(store.get("x").is_err());
    }
}
