//! A simulated worker node: local file store and storage ledger.
//!
//! Nodes hold (a) DFS block replicas and (b) node-local files — the
//! materialized intermediate data of MapReduce (map outputs waiting to be
//! shuffled, distributed-cache copies). The paper's `maxis` limit is about
//! exactly this intermediate data; each node additionally has its own
//! capacity.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use bytes::Bytes;
use parking_lot::RwLock;

use crate::error::{ClusterError, Result};
use crate::ids::NodeId;

/// One simulated node.
#[derive(Debug)]
pub struct Node {
    id: NodeId,
    storage_capacity: Option<u64>,
    files: RwLock<HashMap<String, Bytes>>,
    storage_used: AtomicU64,
    storage_peak: AtomicU64,
    alive: AtomicBool,
}

impl Node {
    /// Creates a node with the given local-storage capacity.
    pub fn new(id: NodeId, storage_capacity: Option<u64>) -> Node {
        Node {
            id,
            storage_capacity,
            files: RwLock::new(HashMap::new()),
            storage_used: AtomicU64::new(0),
            storage_peak: AtomicU64::new(0),
            alive: AtomicBool::new(true),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// True until the node crashes.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Crashes the node: every local file is lost and all subsequent reads
    /// and writes fail with [`ClusterError::NodeDead`]. Returns
    /// `(files lost, bytes lost)`. Idempotent — crashing a dead node loses
    /// nothing further.
    pub fn crash(&self) -> (usize, u64) {
        // Take the file lock before flipping the flag so a concurrent
        // write either completes (and is wiped here) or observes the dead
        // flag and fails.
        let mut files = self.files.write();
        if !self.alive.swap(false, Ordering::SeqCst) {
            return (0, 0);
        }
        let lost_files = files.len();
        let lost_bytes = self.storage_used.swap(0, Ordering::SeqCst);
        files.clear();
        (lost_files, lost_bytes)
    }

    /// Writes (or overwrites) a node-local file, enforcing the storage
    /// capacity. Overwriting releases the old bytes first. Fails with
    /// [`ClusterError::NodeDead`] once the node has crashed.
    pub fn write_local(&self, name: &str, data: Bytes) -> Result<()> {
        let new_len = data.len() as u64;
        let mut files = self.files.write();
        if !self.is_alive() {
            return Err(ClusterError::NodeDead(self.id));
        }
        let old_len = files.get(name).map_or(0, |b| b.len() as u64);
        let cur = self.storage_used.load(Ordering::Relaxed);
        let next = cur - old_len + new_len;
        if let Some(cap) = self.storage_capacity {
            if next > cap {
                return Err(ClusterError::NodeStorageExceeded {
                    node: self.id,
                    requested: next,
                    capacity: cap,
                });
            }
        }
        files.insert(name.to_string(), data);
        self.storage_used.store(next, Ordering::Relaxed);
        self.storage_peak.fetch_max(next, Ordering::Relaxed);
        Ok(())
    }

    /// Reads a node-local file. Fails with [`ClusterError::NodeDead`] once
    /// the node has crashed — a missing file on a *live* node is
    /// `NoSuchFile`, so callers can distinguish "genuinely absent" from
    /// "lost with the node".
    pub fn read_local(&self, name: &str) -> Result<Bytes> {
        let files = self.files.read();
        if !self.is_alive() {
            return Err(ClusterError::NodeDead(self.id));
        }
        files
            .get(name)
            .cloned()
            .ok_or_else(|| ClusterError::NoSuchFile(format!("{}:{}", self.id, name)))
    }

    /// Deletes a node-local file, releasing its bytes. Missing files are
    /// ignored (idempotent, like task-cleanup in real frameworks).
    pub fn delete_local(&self, name: &str) {
        let mut files = self.files.write();
        if let Some(old) = files.remove(name) {
            self.storage_used.fetch_sub(old.len() as u64, Ordering::Relaxed);
        }
    }

    /// Deletes all local files whose name starts with `prefix`; returns the
    /// number of files removed.
    pub fn delete_local_prefix(&self, prefix: &str) -> usize {
        let mut files = self.files.write();
        let victims: Vec<String> =
            files.keys().filter(|k| k.starts_with(prefix)).cloned().collect();
        for v in &victims {
            if let Some(old) = files.remove(v) {
                self.storage_used.fetch_sub(old.len() as u64, Ordering::Relaxed);
            }
        }
        victims.len()
    }

    /// Lists local file names with the given prefix, sorted.
    pub fn list_local(&self, prefix: &str) -> Vec<String> {
        let mut names: Vec<String> =
            self.files.read().keys().filter(|k| k.starts_with(prefix)).cloned().collect();
        names.sort();
        names
    }

    /// Bytes currently held in node-local files.
    pub fn storage_used(&self) -> u64 {
        self.storage_used.load(Ordering::Relaxed)
    }

    /// Peak bytes held over the node's lifetime.
    pub fn storage_peak(&self) -> u64 {
        self.storage_peak.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_delete_roundtrip() {
        let n = Node::new(NodeId(0), None);
        n.write_local("a", Bytes::from_static(b"hello")).unwrap();
        assert_eq!(n.read_local("a").unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(n.storage_used(), 5);
        n.delete_local("a");
        assert_eq!(n.storage_used(), 0);
        assert!(n.read_local("a").is_err());
    }

    #[test]
    fn overwrite_releases_old_bytes() {
        let n = Node::new(NodeId(0), Some(10));
        n.write_local("f", Bytes::from(vec![0u8; 8])).unwrap();
        // Overwriting with 10 bytes fits because the old 8 are released.
        n.write_local("f", Bytes::from(vec![0u8; 10])).unwrap();
        assert_eq!(n.storage_used(), 10);
        assert_eq!(n.storage_peak(), 10);
    }

    #[test]
    fn capacity_enforced() {
        let n = Node::new(NodeId(1), Some(10));
        n.write_local("a", Bytes::from(vec![0u8; 6])).unwrap();
        let err = n.write_local("b", Bytes::from(vec![0u8; 5])).unwrap_err();
        assert!(matches!(err, ClusterError::NodeStorageExceeded { capacity: 10, .. }));
        // Failed write leaves state unchanged.
        assert_eq!(n.storage_used(), 6);
        assert!(n.read_local("b").is_err());
    }

    #[test]
    fn crash_loses_files_and_rejects_io() {
        let n = Node::new(NodeId(2), None);
        n.write_local("a", Bytes::from_static(b"hello")).unwrap();
        assert!(n.is_alive());
        assert_eq!(n.crash(), (1, 5));
        assert!(!n.is_alive());
        assert_eq!(n.storage_used(), 0);
        assert_eq!(n.storage_peak(), 5, "peak survives the crash for reporting");
        assert!(matches!(n.read_local("a"), Err(ClusterError::NodeDead(NodeId(2)))));
        assert!(matches!(
            n.write_local("b", Bytes::from_static(b"x")),
            Err(ClusterError::NodeDead(NodeId(2)))
        ));
        // Crashing again loses nothing further.
        assert_eq!(n.crash(), (0, 0));
    }

    #[test]
    fn prefix_operations() {
        let n = Node::new(NodeId(0), None);
        n.write_local("job1/part0", Bytes::from_static(b"x")).unwrap();
        n.write_local("job1/part1", Bytes::from_static(b"y")).unwrap();
        n.write_local("job2/part0", Bytes::from_static(b"z")).unwrap();
        assert_eq!(n.list_local("job1/"), vec!["job1/part0", "job1/part1"]);
        assert_eq!(n.delete_local_prefix("job1/"), 2);
        assert_eq!(n.storage_used(), 1);
    }
}
