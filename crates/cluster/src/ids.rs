//! Strongly-typed identifiers for cluster entities.

use std::fmt;

/// Identifier of a simulated node (0-based, dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as a usize (for indexing node tables).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifier of a task attempt: `(job, kind, task index, attempt)`.
///
/// Mirrors Hadoop's `attempt_<job>_<m|r>_<task>_<attempt>` naming; used for
/// deterministic failure injection and local-file naming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskAttemptId {
    /// Job sequence number within the cluster's lifetime.
    pub job: u32,
    /// Map or reduce.
    pub kind: TaskKind,
    /// Task index within the job phase.
    pub task: u32,
    /// Retry attempt, 0-based.
    pub attempt: u32,
}

/// Whether a task is a map task or a reduce task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Map-side task.
    Map,
    /// Reduce-side task.
    Reduce,
}

impl fmt::Display for TaskAttemptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            TaskKind::Map => 'm',
            TaskKind::Reduce => 'r',
        };
        write!(f, "attempt_{}_{}_{:06}_{}", self.job, k, self.task, self.attempt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "node3");
        let t = TaskAttemptId { job: 2, kind: TaskKind::Reduce, task: 17, attempt: 1 };
        assert_eq!(t.to_string(), "attempt_2_r_000017_1");
    }
}
