//! # pmr-cluster — shared-nothing cluster simulator
//!
//! The execution substrate for the MapReduce framework in `pmr-mapreduce`,
//! modeling the environment of *Pairwise Element Computation with MapReduce*
//! (Kiefer, Volk, Lehner; HPDC 2010, §3 and §6):
//!
//! * [`node`] — worker nodes with local file stores and storage ledgers;
//! * [`dfs`] — an in-memory distributed file system with block placement,
//!   replication, record-aligned input splits, and locality accounting;
//! * [`network`] — traffic accounting and a latency/bandwidth cost model
//!   (the paper's *communication cost* metric);
//! * [`memory`] — per-task working-set budgets (the paper's `maxws`);
//! * [`failure`] — deterministic task-failure injection and seeded
//!   node-crash schedules (chaos testing);
//! * [`codec`] — the wire codecs ([`codec::Wire`], [`codec::RawRecord`])
//!   shared by the MapReduce engine and the transport frames;
//! * [`transport`] — the [`Transport`] seam: node-local storage either
//!   in-process (simulated, deterministic) or in spawned worker processes
//!   speaking length-prefixed frames over Unix-domain/TCP sockets;
//! * [`cluster`] — the assembled [`Cluster`], including the cluster-wide
//!   intermediate-storage cap (the paper's `maxis`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod codec;
pub mod config;
pub mod dfs;
pub mod error;
pub mod failure;
pub mod ids;
pub mod memory;
pub mod network;
pub mod node;
pub mod transport;

pub use cluster::Cluster;
pub use codec::{CodecError, RawRecord, Wire};
pub use config::{ClusterConfig, NodeConfig, SocketMode, TransportKind};
pub use dfs::{Dfs, InputSplit};
pub use error::{ClusterError, Result};
pub use failure::{ChaosPlan, FailureInjector};
pub use ids::{NodeId, TaskAttemptId, TaskKind};
pub use memory::MemoryGauge;
pub use network::{NetworkModel, TrafficAccountant};
pub use node::Node;
pub use pmr_obs::Telemetry;
pub use transport::{
    NodeStore, Transport, WireSnapshot, WorkerInfo, WorkerTraceEvent, WorkerTraceReport,
};
