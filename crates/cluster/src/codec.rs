//! Wire format for keys, values, and records.
//!
//! Intermediate data in the engine is real serialized bytes — that is what
//! makes the paper's *communication cost* and *intermediate storage* metrics
//! (Table 1, Figures 8–9) measurable rather than estimated. The format is a
//! minimal length-prefixed binary encoding:
//!
//! * integers: fixed-width **big-endian** (so lexicographic byte order on
//!   encoded keys equals numeric order — the shuffle sorts raw bytes, like
//!   Hadoop's raw comparator);
//! * byte strings / strings / vectors: `u32` length prefix + payload;
//! * records: `key-len, key-bytes, value-len, value-bytes`.
//!
//! Encodings must be *canonical*: two values compare equal iff their
//! encodings are byte-identical, because the shuffle groups by encoded key.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes available than the decoder needed.
    Truncated {
        /// What was being decoded.
        what: &'static str,
    },
    /// A length prefix or tag had an invalid value.
    Corrupt {
        /// What was being decoded.
        what: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { what } => write!(f, "truncated input while decoding {what}"),
            CodecError::Corrupt { what } => write!(f, "corrupt encoding of {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Result alias for decoding.
pub type DecodeResult<T> = Result<T, CodecError>;

/// A type with a canonical binary encoding.
///
/// ```
/// use pmr_cluster::Wire;
///
/// let v = (7u64, String::from("hi"), vec![1u32, 2]);
/// let bytes = v.to_bytes();
/// let back = <(u64, String, Vec<u32>)>::from_bytes(bytes).unwrap();
/// assert_eq!(back, v);
/// // u64 keys sort correctly as raw bytes (big-endian encoding):
/// assert!(1u64.to_bytes() < 256u64.to_bytes());
/// ```
pub trait Wire: Sized + Send + 'static {
    /// Appends the canonical encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Decodes one value from the front of `buf`, consuming its bytes.
    fn decode(buf: &mut Bytes) -> DecodeResult<Self>;

    /// Encodes into a fresh buffer (convenience).
    fn to_bytes(&self) -> Bytes {
        let mut b = BytesMut::new();
        self.encode(&mut b);
        b.freeze()
    }

    /// Decodes a value that must consume the entire buffer.
    fn from_bytes(bytes: Bytes) -> DecodeResult<Self> {
        let mut b = bytes;
        let v = Self::decode(&mut b)?;
        if !b.is_empty() {
            return Err(CodecError::Corrupt { what: "trailing bytes" });
        }
        Ok(v)
    }
}

macro_rules! impl_wire_uint {
    ($t:ty, $get:ident, $put:ident, $n:expr, $name:expr) => {
        impl Wire for $t {
            fn encode(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
            fn decode(buf: &mut Bytes) -> DecodeResult<Self> {
                if buf.len() < $n {
                    return Err(CodecError::Truncated { what: $name });
                }
                Ok(buf.$get())
            }
        }
    };
}

impl_wire_uint!(u8, get_u8, put_u8, 1, "u8");
impl_wire_uint!(u16, get_u16, put_u16, 2, "u16");
impl_wire_uint!(u32, get_u32, put_u32, 4, "u32");
impl_wire_uint!(u64, get_u64, put_u64, 8, "u64");

impl Wire for i64 {
    /// Encoded as sign-flipped big-endian so byte order equals numeric order.
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64((*self as u64) ^ (1 << 63));
    }
    fn decode(buf: &mut Bytes) -> DecodeResult<Self> {
        if buf.len() < 8 {
            return Err(CodecError::Truncated { what: "i64" });
        }
        Ok((buf.get_u64() ^ (1 << 63)) as i64)
    }
}

impl Wire for f64 {
    /// IEEE-754 bits, big-endian. (Not order-preserving for negatives; use
    /// only as a value type, not a key, when ordering matters.)
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_f64(*self);
    }
    fn decode(buf: &mut Bytes) -> DecodeResult<Self> {
        if buf.len() < 8 {
            return Err(CodecError::Truncated { what: "f64" });
        }
        Ok(buf.get_f64())
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self as u8);
    }
    fn decode(buf: &mut Bytes) -> DecodeResult<Self> {
        if buf.is_empty() {
            return Err(CodecError::Truncated { what: "bool" });
        }
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Corrupt { what: "bool" }),
        }
    }
}

impl Wire for () {
    fn encode(&self, _buf: &mut BytesMut) {}
    fn decode(_buf: &mut Bytes) -> DecodeResult<Self> {
        Ok(())
    }
}

/// Upper bound on any single length-prefixed item (1 GiB). A prefix above
/// this is treated as corrupt outright — even when a decoder is handed a
/// buffer that happens to be large enough — so a flipped high bit in a
/// frame header can never trigger a gigabyte-sized `split_to`.
pub const MAX_ITEM_LEN: usize = 1 << 30;

fn put_len(buf: &mut BytesMut, len: usize) {
    debug_assert!(len <= u32::MAX as usize);
    buf.put_u32(len as u32);
}

fn get_len(buf: &mut Bytes, what: &'static str) -> DecodeResult<usize> {
    if buf.len() < 4 {
        return Err(CodecError::Truncated { what });
    }
    let len = buf.get_u32() as usize;
    if len > MAX_ITEM_LEN {
        return Err(CodecError::Corrupt { what });
    }
    if buf.len() < len {
        return Err(CodecError::Truncated { what });
    }
    Ok(len)
}

impl Wire for Bytes {
    fn encode(&self, buf: &mut BytesMut) {
        put_len(buf, self.len());
        buf.extend_from_slice(self);
    }
    fn decode(buf: &mut Bytes) -> DecodeResult<Self> {
        let len = get_len(buf, "bytes")?;
        Ok(buf.split_to(len))
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut BytesMut) {
        put_len(buf, self.len());
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(buf: &mut Bytes) -> DecodeResult<Self> {
        let len = get_len(buf, "string")?;
        String::from_utf8(buf.split_to(len).to_vec())
            .map_err(|_| CodecError::Corrupt { what: "string utf-8" })
    }
}

impl<T: Wire> Wire for Vec<T>
where
    Vec<T>: Send,
{
    fn encode(&self, buf: &mut BytesMut) {
        put_len(buf, self.len());
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> DecodeResult<Self> {
        if buf.len() < 4 {
            return Err(CodecError::Truncated { what: "vec" });
        }
        let n = buf.get_u32() as usize;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> DecodeResult<Self> {
        if buf.is_empty() {
            return Err(CodecError::Truncated { what: "option" });
        }
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            _ => Err(CodecError::Corrupt { what: "option tag" }),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> DecodeResult<Self> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> DecodeResult<Self> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

/// A raw (encoded-key, encoded-value) record as moved by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawRecord {
    /// Canonical encoding of the key.
    pub key: Bytes,
    /// Canonical encoding of the value.
    pub value: Bytes,
}

impl RawRecord {
    /// Serialized size of this record in a record stream.
    pub fn framed_len(&self) -> usize {
        8 + self.key.len() + self.value.len()
    }

    /// Appends the framed record (`u32` key len, key, `u32` value len,
    /// value) to `buf`.
    pub fn write_framed(&self, buf: &mut BytesMut) {
        put_len(buf, self.key.len());
        buf.extend_from_slice(&self.key);
        put_len(buf, self.value.len());
        buf.extend_from_slice(&self.value);
    }

    /// Reads one framed record from the front of `buf`.
    pub fn read_framed(buf: &mut Bytes) -> DecodeResult<RawRecord> {
        let klen = get_len(buf, "record key")?;
        let key = buf.split_to(klen);
        let vlen = get_len(buf, "record value")?;
        let value = buf.split_to(vlen);
        Ok(RawRecord { key, value })
    }
}

/// Encodes a typed record stream into framed bytes, returning the buffer and
/// the byte offset of each record start (for record-aligned DFS splits).
pub fn encode_record_stream<K: Wire, V: Wire>(
    records: impl IntoIterator<Item = (K, V)>,
) -> (Bytes, Vec<u64>) {
    let mut buf = BytesMut::new();
    let mut offsets = Vec::new();
    for (k, v) in records {
        offsets.push(buf.len() as u64);
        let rec = RawRecord { key: k.to_bytes(), value: v.to_bytes() };
        rec.write_framed(&mut buf);
    }
    (buf.freeze(), offsets)
}

/// Decodes a framed byte stream back into typed records.
pub fn decode_record_stream<K: Wire, V: Wire>(mut data: Bytes) -> DecodeResult<Vec<(K, V)>> {
    let mut out = Vec::new();
    while !data.is_empty() {
        let raw = RawRecord::read_framed(&mut data)?;
        out.push((K::from_bytes(raw.key)?, V::from_bytes(raw.value)?));
    }
    Ok(out)
}

/// Decodes a framed byte stream into raw records (no typing).
pub fn decode_raw_stream(mut data: Bytes) -> DecodeResult<Vec<RawRecord>> {
    let mut out = Vec::new();
    while !data.is_empty() {
        out.push(RawRecord::read_framed(&mut data)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug + Clone>(v: T) {
        let b = v.to_bytes();
        assert_eq!(T::from_bytes(b).unwrap(), v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(54321u16);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(i64::MIN);
        roundtrip(1.5f64);
        roundtrip(f64::NEG_INFINITY);
        roundtrip(true);
        roundtrip(());
        roundtrip(String::from("héllo wörld"));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u8>::new());
        roundtrip(Bytes::from_static(b"raw"));
        roundtrip(Some(7u32));
        roundtrip(Option::<u32>::None);
        roundtrip((1u64, String::from("x")));
        roundtrip((1u64, 2.5f64, vec![9u8]));
    }

    #[test]
    fn u64_byte_order_is_numeric_order() {
        let mut pairs = vec![(0u64, 1u64), (255, 256), (u64::MAX - 1, u64::MAX), (7, 1 << 40)];
        pairs.push((12345, 12346));
        for (a, b) in pairs {
            assert!(a.to_bytes() < b.to_bytes(), "{a} vs {b}");
        }
    }

    #[test]
    fn i64_byte_order_is_numeric_order() {
        let vals = [i64::MIN, -1_000_000, -1, 0, 1, 42, i64::MAX];
        for w in vals.windows(2) {
            assert!(w[0].to_bytes() < w[1].to_bytes(), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn truncated_input_detected() {
        let b = 0xAABBCCDDu32.to_bytes();
        let mut short = b.slice(0..2);
        assert!(matches!(u32::decode(&mut short), Err(CodecError::Truncated { .. })));
        let mut empty = Bytes::new();
        assert!(String::decode(&mut empty).is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut buf = BytesMut::new();
        7u32.encode(&mut buf);
        buf.put_u8(99);
        assert!(matches!(u32::from_bytes(buf.freeze()), Err(CodecError::Corrupt { .. })));
    }

    #[test]
    fn corrupt_tags_detected() {
        assert!(matches!(
            bool::from_bytes(Bytes::from_static(&[2])),
            Err(CodecError::Corrupt { .. })
        ));
        assert!(matches!(
            Option::<u8>::from_bytes(Bytes::from_static(&[9])),
            Err(CodecError::Corrupt { .. })
        ));
    }

    #[test]
    fn record_stream_roundtrip_with_offsets() {
        let recs: Vec<(u64, String)> = (0..10).map(|i| (i, format!("value-{i}"))).collect();
        let (bytes, offsets) = encode_record_stream(recs.clone());
        assert_eq!(offsets.len(), 10);
        assert_eq!(offsets[0], 0);
        assert!(offsets.windows(2).all(|w| w[0] < w[1]));
        let back: Vec<(u64, String)> = decode_record_stream(bytes).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn framed_len_matches_actual() {
        let r = RawRecord { key: Bytes::from_static(b"key"), value: Bytes::from_static(b"val!") };
        let mut buf = BytesMut::new();
        r.write_framed(&mut buf);
        assert_eq!(buf.len(), r.framed_len());
    }

    #[test]
    fn oversized_length_prefix_is_corrupt_not_a_huge_read() {
        // Length prefix claims 2 GiB (> MAX_ITEM_LEN) with 4 bytes behind it.
        let mut buf = BytesMut::new();
        buf.put_u32(0x8000_0000);
        buf.extend_from_slice(b"data");
        let mut b = buf.freeze();
        assert!(matches!(RawRecord::read_framed(&mut b), Err(CodecError::Corrupt { .. })));
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_panic() {
        // A record whose value length prefix promises more than remains.
        let mut buf = BytesMut::new();
        put_len(&mut buf, 1);
        buf.put_u8(b'k');
        put_len(&mut buf, 100);
        buf.put_u8(b'v');
        assert!(matches!(decode_raw_stream(buf.freeze()), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn empty_stream_decodes_empty() {
        let v: Vec<(u64, u64)> = decode_record_stream(Bytes::new()).unwrap();
        assert!(v.is_empty());
    }
}
