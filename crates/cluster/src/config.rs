//! Cluster and node configuration.
//!
//! The defaults model the environment of the paper's §6 evaluation scaled
//! down to a laptop: a handful of nodes, a per-task working-set budget
//! (`maxws`), and a cluster-wide intermediate-storage budget (`maxis`).

use crate::network::NetworkModel;

/// Socket family used by the multi-process transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketMode {
    /// Unix-domain sockets (the default; lowest overhead, Unix only).
    Uds,
    /// TCP over loopback (the portable fallback).
    Tcp,
}

/// Where node-local storage physically lives (see [`crate::transport`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// The simulated in-process cluster — deterministic, the default, and
    /// byte-identical to the historical behavior.
    InProcess,
    /// One spawned `pmr-worker` process per node; every store operation
    /// crosses a real socket.
    Process {
        /// Socket family for the worker connections.
        socket: SocketMode,
    },
}

/// Per-node resource configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeConfig {
    /// Per-task main-memory budget in bytes — the paper's `maxws`.
    /// `None` disables enforcement.
    pub task_memory_budget: Option<u64>,
    /// Local storage capacity for intermediate data, in bytes.
    /// `None` disables enforcement.
    pub storage_capacity: Option<u64>,
    /// Concurrent map-task slots on this node.
    pub map_slots: usize,
    /// Concurrent reduce-task slots on this node.
    pub reduce_slots: usize,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            task_memory_budget: None,
            storage_capacity: None,
            map_slots: 2,
            reduce_slots: 2,
        }
    }
}

/// Whole-cluster configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of worker nodes (`n` in the paper).
    pub num_nodes: usize,
    /// Per-node resources.
    pub node: NodeConfig,
    /// Network cost model for shuffle / DFS-remote-read accounting.
    pub network: NetworkModel,
    /// DFS block size in bytes.
    pub dfs_block_size: u64,
    /// DFS replication factor (each block stored on this many nodes).
    pub dfs_replication: usize,
    /// Cluster-wide cap on materialized intermediate data — the paper's
    /// `maxis`. `None` disables enforcement.
    pub intermediate_storage_capacity: Option<u64>,
    /// Probability in `[0, 1]` that a task attempt fails (injected,
    /// deterministic per attempt id); retried attempts use fresh draws.
    pub task_failure_probability: f64,
    /// Maximum attempts per task before the job is declared failed.
    pub max_task_attempts: u32,
    /// Seed for deterministic failure injection and DFS placement jitter.
    pub seed: u64,
    /// Number of nodes to crash (chaos injection) over the cluster's
    /// lifetime. Clamped so at least one node survives. `0` disables
    /// chaos entirely.
    pub chaos_nodes: usize,
    /// Seed for the deterministic crash schedule (victim choice and crash
    /// points). Independent of `seed` so chaos can vary while task-failure
    /// draws stay fixed.
    pub chaos_seed: u64,
    /// Speculative execution: when a running task's elapsed time exceeds
    /// this multiple of the median completed-task time, a backup attempt is
    /// launched on another node. `None` disables speculation.
    pub speculation_multiplier: Option<f64>,
    /// Where node-local storage lives: simulated in-process (default) or
    /// in spawned worker processes behind real sockets.
    pub transport: TransportKind,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            num_nodes: 4,
            node: NodeConfig::default(),
            network: NetworkModel::default(),
            dfs_block_size: 1 << 20, // 1 MiB
            dfs_replication: 2,
            intermediate_storage_capacity: None,
            task_failure_probability: 0.0,
            max_task_attempts: 4,
            seed: 0x9E37_79B9_7F4A_7C15,
            chaos_nodes: 0,
            chaos_seed: 0xDEAD_BEEF_0BAD_C0DE,
            speculation_multiplier: None,
            transport: TransportKind::InProcess,
        }
    }
}

impl ClusterConfig {
    /// A small cluster with `n` nodes and otherwise default settings.
    pub fn with_nodes(n: usize) -> Self {
        ClusterConfig { num_nodes: n, ..Default::default() }
    }

    /// Sets the per-task memory budget (`maxws`), builder-style.
    pub fn task_memory_budget(mut self, bytes: u64) -> Self {
        self.node.task_memory_budget = Some(bytes);
        self
    }

    /// Sets the cluster-wide intermediate-storage cap (`maxis`),
    /// builder-style.
    pub fn intermediate_storage(mut self, bytes: u64) -> Self {
        self.intermediate_storage_capacity = Some(bytes);
        self
    }

    /// Sets the failure-injection probability, builder-style.
    pub fn failure_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.task_failure_probability = p;
        self
    }

    /// Sets the RNG seed, builder-style.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables chaos injection: crash `nodes` nodes at seeded points,
    /// builder-style.
    pub fn chaos(mut self, nodes: usize, seed: u64) -> Self {
        self.chaos_nodes = nodes;
        self.chaos_seed = seed;
        self
    }

    /// Enables speculative execution with the given slowness multiplier,
    /// builder-style.
    pub fn speculation(mut self, multiplier: f64) -> Self {
        assert!(multiplier >= 1.0, "speculation multiplier must be >= 1");
        self.speculation_multiplier = Some(multiplier);
        self
    }

    /// Selects the transport backing node-local storage, builder-style.
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Total map slots across the cluster.
    pub fn total_map_slots(&self) -> usize {
        self.num_nodes * self.node.map_slots
    }

    /// Total reduce slots across the cluster.
    pub fn total_reduce_slots(&self) -> usize {
        self.num_nodes * self.node.reduce_slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = ClusterConfig::with_nodes(8)
            .task_memory_budget(200 << 20)
            .intermediate_storage(1 << 40)
            .failure_probability(0.1)
            .seed(42);
        assert_eq!(c.num_nodes, 8);
        assert_eq!(c.node.task_memory_budget, Some(200 << 20));
        assert_eq!(c.intermediate_storage_capacity, Some(1 << 40));
        assert_eq!(c.task_failure_probability, 0.1);
        assert_eq!(c.total_map_slots(), 16);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_probability() {
        let _ = ClusterConfig::default().failure_probability(1.5);
    }

    #[test]
    fn chaos_and_speculation_builders() {
        let c = ClusterConfig::with_nodes(4).chaos(1, 7).speculation(2.5);
        assert_eq!(c.chaos_nodes, 1);
        assert_eq!(c.chaos_seed, 7);
        assert_eq!(c.speculation_multiplier, Some(2.5));
        // Defaults keep chaos off.
        assert_eq!(ClusterConfig::default().chaos_nodes, 0);
        assert_eq!(ClusterConfig::default().speculation_multiplier, None);
    }

    #[test]
    #[should_panic(expected = "multiplier")]
    fn rejects_bad_speculation_multiplier() {
        let _ = ClusterConfig::default().speculation(0.5);
    }

    #[test]
    fn transport_defaults_to_in_process() {
        assert_eq!(ClusterConfig::default().transport, TransportKind::InProcess);
        let c = ClusterConfig::with_nodes(2)
            .transport(TransportKind::Process { socket: SocketMode::Tcp });
        assert_eq!(c.transport, TransportKind::Process { socket: SocketMode::Tcp });
    }
}
