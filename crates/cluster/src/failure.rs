//! Deterministic task-failure injection.
//!
//! Real MapReduce deployments (the paper ran Hadoop on EC2 and the
//! Google/IBM academic cloud) lose task attempts routinely; the framework
//! recovers by re-running them. The engine in `pmr-mapreduce` supports the
//! same retry loop; this injector decides — deterministically from a seed
//! and the attempt id — which attempts "fail", so tests of the retry path
//! are reproducible.

use crate::ids::TaskAttemptId;

/// Deterministic Bernoulli failure source keyed by task-attempt identity.
#[derive(Debug, Clone)]
pub struct FailureInjector {
    /// Failures happen when the attempt's hash falls below this threshold.
    threshold: u64,
    seed: u64,
}

impl FailureInjector {
    /// Creates an injector that fails each attempt independently with
    /// probability `p` (clamped to `[0, 1]`).
    pub fn new(p: f64, seed: u64) -> FailureInjector {
        let p = p.clamp(0.0, 1.0);
        let threshold = if p >= 1.0 { u64::MAX } else { (p * u64::MAX as f64) as u64 };
        FailureInjector { threshold, seed }
    }

    /// An injector that never fails anything.
    pub fn disabled() -> FailureInjector {
        FailureInjector { threshold: 0, seed: 0 }
    }

    /// True iff this attempt should fail. Pure function of `(seed, id)`.
    pub fn should_fail(&self, id: TaskAttemptId) -> bool {
        if self.threshold == 0 {
            return false;
        }
        let kind_bit = match id.kind {
            crate::ids::TaskKind::Map => 0u64,
            crate::ids::TaskKind::Reduce => 1,
        };
        let x = splitmix64(
            self.seed
                ^ (id.job as u64) << 48
                ^ kind_bit << 40
                ^ (id.task as u64) << 8
                ^ id.attempt as u64,
        );
        x < self.threshold
    }
}

/// SplitMix64 — tiny, high-quality 64-bit mixer (public domain algorithm).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TaskKind;

    fn attempt(task: u32, attempt: u32) -> TaskAttemptId {
        TaskAttemptId { job: 0, kind: TaskKind::Map, task, attempt }
    }

    #[test]
    fn zero_probability_never_fails() {
        let inj = FailureInjector::new(0.0, 1);
        assert!((0..1000).all(|t| !inj.should_fail(attempt(t, 0))));
    }

    #[test]
    fn full_probability_always_fails() {
        let inj = FailureInjector::new(1.0, 1);
        assert!((0..1000).all(|t| inj.should_fail(attempt(t, 0))));
    }

    #[test]
    fn deterministic_across_instances() {
        let a = FailureInjector::new(0.3, 99);
        let b = FailureInjector::new(0.3, 99);
        for t in 0..200 {
            assert_eq!(a.should_fail(attempt(t, 0)), b.should_fail(attempt(t, 0)));
        }
    }

    #[test]
    fn rate_is_approximately_p() {
        let inj = FailureInjector::new(0.25, 7);
        let fails = (0..10_000).filter(|&t| inj.should_fail(attempt(t, 0))).count();
        let rate = fails as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn retries_draw_independently() {
        let inj = FailureInjector::new(0.5, 3);
        // Some attempt that fails at attempt 0 must succeed by attempt 10
        // for at least one task (overwhelmingly likely).
        let mut recovered = false;
        for t in 0..100 {
            if inj.should_fail(attempt(t, 0)) && (1..10).any(|a| !inj.should_fail(attempt(t, a))) {
                recovered = true;
                break;
            }
        }
        assert!(recovered);
    }
}
