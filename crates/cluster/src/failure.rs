//! Deterministic task-failure injection.
//!
//! Real MapReduce deployments (the paper ran Hadoop on EC2 and the
//! Google/IBM academic cloud) lose task attempts routinely; the framework
//! recovers by re-running them. The engine in `pmr-mapreduce` supports the
//! same retry loop; this injector decides — deterministically from a seed
//! and the attempt id — which attempts "fail", so tests of the retry path
//! are reproducible.

use crate::ids::TaskAttemptId;

/// Deterministic Bernoulli failure source keyed by task-attempt identity.
#[derive(Debug, Clone)]
pub struct FailureInjector {
    /// Failures happen when the attempt's hash falls below this threshold.
    threshold: u64,
    seed: u64,
}

impl FailureInjector {
    /// Creates an injector that fails each attempt independently with
    /// probability `p` (clamped to `[0, 1]`).
    pub fn new(p: f64, seed: u64) -> FailureInjector {
        let p = p.clamp(0.0, 1.0);
        let threshold = if p >= 1.0 { u64::MAX } else { (p * u64::MAX as f64) as u64 };
        FailureInjector { threshold, seed }
    }

    /// An injector that never fails anything.
    pub fn disabled() -> FailureInjector {
        FailureInjector { threshold: 0, seed: 0 }
    }

    /// True iff this attempt should fail. Pure function of `(seed, id)`.
    pub fn should_fail(&self, id: TaskAttemptId) -> bool {
        if self.threshold == 0 {
            return false;
        }
        // p = 1.0 must be unconditional: with `x < threshold` an attempt
        // hashing to exactly u64::MAX would survive a probability-1 injector.
        if self.threshold == u64::MAX {
            return true;
        }
        let kind_bit = match id.kind {
            crate::ids::TaskKind::Map => 0u64,
            crate::ids::TaskKind::Reduce => 1,
        };
        let x = splitmix64(
            self.seed
                ^ (id.job as u64) << 48
                ^ kind_bit << 40
                ^ (id.task as u64) << 8
                ^ id.attempt as u64,
        );
        x < self.threshold
    }
}

/// SplitMix64 — tiny, high-quality 64-bit mixer (public domain algorithm).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic schedule of node crashes for chaos testing.
///
/// The plan is fixed up front from `(num_victims, seed, num_nodes)`: it
/// picks `num_victims` distinct victim nodes (never all of them — at least
/// one node always survives) and, for each, a small task-completion count
/// after which the crash fires. The engine calls
/// [`crate::Cluster::note_task_completion`] as tasks commit; when the
/// completion counter reaches a victim's threshold, that node crashes.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// `(completed-task threshold, victim)` pairs, ascending by threshold.
    crashes: Vec<(u64, crate::ids::NodeId)>,
}

impl ChaosPlan {
    /// Builds the schedule. `num_victims` is clamped to `num_nodes - 1` so
    /// the cluster always keeps at least one live node.
    pub fn new(num_victims: usize, seed: u64, num_nodes: usize) -> ChaosPlan {
        let victims = num_victims.min(num_nodes.saturating_sub(1));
        let mut ids: Vec<u32> = (0..num_nodes as u32).collect();
        // Seeded Fisher–Yates: victim choice depends only on the seed.
        let mut state = seed ^ 0xC4A0_5C4A_0055_1DEA;
        let mut pos = ids.len();
        while pos > 1 {
            state = splitmix64(state);
            let j = (state % pos as u64) as usize;
            pos -= 1;
            ids.swap(pos, j);
        }
        let mut crashes: Vec<(u64, crate::ids::NodeId)> = ids[..victims]
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                // Small, distinct thresholds so crashes land mid-job even in
                // small test runs: 1 + a seeded offset in [0, 3], spread out
                // per victim.
                let jitter = splitmix64(seed ^ 0xBADC_0FFE ^ i as u64) % 4;
                (1 + 2 * i as u64 + jitter, crate::ids::NodeId(id))
            })
            .collect();
        crashes.sort_unstable();
        ChaosPlan { crashes }
    }

    /// The planned `(threshold, victim)` pairs, ascending.
    pub fn crashes(&self) -> &[(u64, crate::ids::NodeId)] {
        &self.crashes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TaskKind;

    fn attempt(task: u32, attempt: u32) -> TaskAttemptId {
        TaskAttemptId { job: 0, kind: TaskKind::Map, task, attempt }
    }

    #[test]
    fn zero_probability_never_fails() {
        let inj = FailureInjector::new(0.0, 1);
        assert!((0..1000).all(|t| !inj.should_fail(attempt(t, 0))));
    }

    #[test]
    fn full_probability_always_fails() {
        let inj = FailureInjector::new(1.0, 1);
        assert!((0..1000).all(|t| inj.should_fail(attempt(t, 0))));
    }

    #[test]
    fn full_probability_fails_even_max_hash() {
        // Regression: with `x < threshold` and threshold = u64::MAX, an
        // attempt hashing to exactly u64::MAX survived a p = 1.0 injector.
        // 0x31628AF67B2131AB is a splitmix64 preimage of u64::MAX; seeding
        // the injector with it makes attempt (job 0, map, task 0, attempt 0)
        // hash to exactly u64::MAX.
        const SEED: u64 = 0x31628AF67B2131AB;
        assert_eq!(splitmix64(SEED), u64::MAX, "preimage constant is stale");
        let inj = FailureInjector::new(1.0, SEED);
        assert!(inj.should_fail(attempt(0, 0)));
    }

    #[test]
    fn chaos_plan_is_deterministic_and_bounded() {
        let a = ChaosPlan::new(2, 42, 4);
        let b = ChaosPlan::new(2, 42, 4);
        assert_eq!(a.crashes(), b.crashes());
        assert_eq!(a.crashes().len(), 2);
        // Victims are distinct nodes.
        let mut victims: Vec<u32> = a.crashes().iter().map(|&(_, n)| n.0).collect();
        victims.sort_unstable();
        victims.dedup();
        assert_eq!(victims.len(), 2);
        // Thresholds ascend.
        assert!(a.crashes().windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn chaos_plan_never_kills_every_node() {
        let plan = ChaosPlan::new(10, 7, 3);
        assert_eq!(plan.crashes().len(), 2);
        let single = ChaosPlan::new(5, 7, 1);
        assert!(single.crashes().is_empty());
    }

    #[test]
    fn deterministic_across_instances() {
        let a = FailureInjector::new(0.3, 99);
        let b = FailureInjector::new(0.3, 99);
        for t in 0..200 {
            assert_eq!(a.should_fail(attempt(t, 0)), b.should_fail(attempt(t, 0)));
        }
    }

    #[test]
    fn rate_is_approximately_p() {
        let inj = FailureInjector::new(0.25, 7);
        let fails = (0..10_000).filter(|&t| inj.should_fail(attempt(t, 0))).count();
        let rate = fails as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn retries_draw_independently() {
        let inj = FailureInjector::new(0.5, 3);
        // Some attempt that fails at attempt 0 must succeed by attempt 10
        // for at least one task (overwhelmingly likely).
        let mut recovered = false;
        for t in 0..100 {
            if inj.should_fail(attempt(t, 0)) && (1..10).any(|a| !inj.should_fail(attempt(t, a))) {
                recovered = true;
                break;
            }
        }
        assert!(recovered);
    }
}
