//! Per-task working-set memory accounting (the paper's `maxws`).
//!
//! A reduce task in the pairwise algorithm materializes its whole working
//! set in memory (paper §5.4: "Because we want the working set to be kept in
//! memory, its size may hit a limitation introduced by the amount of
//! available main memory"). [`MemoryGauge`] is handed to each task; the task
//! reserves bytes as it deserializes elements and the gauge fails the task
//! the moment the budget is exceeded — reproducing the failure mode the
//! paper observed on real clouds ("the working set size limit was hit a
//! little earlier than expected" due to bookkeeping overhead, which callers
//! model via [`MemoryGauge::with_overhead_factor`]).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{ClusterError, Result};

/// Tracks one task's live memory against an optional budget and records the
/// peak. All operations are thread-safe.
#[derive(Debug)]
pub struct MemoryGauge {
    budget: Option<u64>,
    /// Numerator/denominator of the accounting overhead factor: every
    /// reserved byte is charged as `bytes · num / den`, modeling runtime
    /// per-record bookkeeping on top of raw payload bytes.
    overhead_num: u64,
    overhead_den: u64,
    used: AtomicU64,
    peak: AtomicU64,
}

impl MemoryGauge {
    /// A gauge with an optional budget and no accounting overhead.
    pub fn new(budget: Option<u64>) -> Self {
        MemoryGauge {
            budget,
            overhead_num: 1,
            overhead_den: 1,
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// An unlimited gauge (still records usage and peak).
    pub fn unlimited() -> Self {
        Self::new(None)
    }

    /// Adds a multiplicative accounting overhead: each reserved byte charges
    /// `num/den` bytes against the budget. E.g. `(11, 10)` models 10%
    /// per-record runtime overhead — the effect the paper saw in §6.
    pub fn with_overhead_factor(mut self, num: u64, den: u64) -> Self {
        assert!(den > 0 && num >= den, "overhead factor must be ≥ 1");
        self.overhead_num = num;
        self.overhead_den = den;
        self
    }

    #[inline]
    fn charged(&self, bytes: u64) -> u64 {
        bytes.saturating_mul(self.overhead_num) / self.overhead_den
    }

    /// Reserves `bytes`; fails with [`ClusterError::MemoryExceeded`] if the
    /// budget would be exceeded (the reservation is then *not* recorded).
    pub fn try_reserve(&self, bytes: u64) -> Result<()> {
        let charged = self.charged(bytes);
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let next = cur + charged;
            if let Some(budget) = self.budget {
                if next > budget {
                    return Err(ClusterError::MemoryExceeded { requested: next, budget });
                }
            }
            match self.used.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => {
                    self.peak.fetch_max(next, Ordering::Relaxed);
                    return Ok(());
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Releases `bytes` previously reserved.
    pub fn release(&self, bytes: u64) {
        let charged = self.charged(bytes);
        let prev = self.used.fetch_sub(charged, Ordering::Relaxed);
        debug_assert!(prev >= charged, "released more memory than reserved");
    }

    /// Currently reserved bytes (after overhead).
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Peak reserved bytes over the gauge's lifetime (after overhead).
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// The configured budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_release_tracks_peak() {
        let g = MemoryGauge::new(Some(100));
        g.try_reserve(60).unwrap();
        g.try_reserve(30).unwrap();
        g.release(50);
        g.try_reserve(20).unwrap();
        assert_eq!(g.used(), 60);
        assert_eq!(g.peak(), 90);
    }

    #[test]
    fn budget_enforced_exactly() {
        let g = MemoryGauge::new(Some(100));
        g.try_reserve(100).unwrap();
        let err = g.try_reserve(1).unwrap_err();
        assert_eq!(err, ClusterError::MemoryExceeded { requested: 101, budget: 100 });
        // Failed reservation is not recorded.
        assert_eq!(g.used(), 100);
    }

    #[test]
    fn unlimited_never_fails() {
        let g = MemoryGauge::unlimited();
        g.try_reserve(u64::MAX / 4).unwrap();
        assert!(g.peak() > 0);
    }

    #[test]
    fn overhead_factor_charges_more() {
        // 25% overhead: 80 raw bytes charge 100.
        let g = MemoryGauge::new(Some(100)).with_overhead_factor(5, 4);
        g.try_reserve(80).unwrap();
        assert_eq!(g.used(), 100);
        assert!(g.try_reserve(1).is_err());
        g.release(80);
        assert_eq!(g.used(), 0);
    }

    #[test]
    fn concurrent_reservations_respect_budget() {
        use std::sync::Arc;
        let g = Arc::new(MemoryGauge::new(Some(1000)));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                let mut ok = 0u64;
                for _ in 0..1000 {
                    if g.try_reserve(1).is_ok() {
                        ok += 1;
                    }
                }
                ok
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000);
        assert_eq!(g.used(), 1000);
    }
}
