//! Network cost model and traffic accounting.
//!
//! The execution model (paper §3) assumes "a number of nodes that are
//! connected by a (possibly slow) network" with no online communication —
//! data moves only as stored files between tasks. The paper's
//! *communication cost* metric (Table 1) counts bytes of intermediate data
//! moved through the system; this module measures exactly that, plus a
//! simple latency/bandwidth time model so experiments can also report
//! simulated transfer time.

use std::sync::atomic::{AtomicU64, Ordering};

use pmr_obs::Telemetry;

use crate::ids::NodeId;

/// Linear latency + bandwidth cost model for point-to-point transfers.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    /// Per-transfer latency in microseconds.
    pub latency_us: u64,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        // Gigabit ethernet-ish: 100 µs latency, ~117 MiB/s.
        NetworkModel { latency_us: 100, bandwidth_bytes_per_sec: 117 << 20 }
    }
}

impl NetworkModel {
    /// Simulated wall time for moving `bytes` over one link, in microseconds.
    pub fn transfer_time_us(&self, bytes: u64) -> u64 {
        self.latency_us + bytes.saturating_mul(1_000_000) / self.bandwidth_bytes_per_sec.max(1)
    }
}

/// Thread-safe accumulator of network traffic.
///
/// Local moves (same source and destination node) are counted separately —
/// the paper assumes "most of the input data can be read locally" and its
/// communication-cost metric covers only data that crosses the network.
///
/// Every transfer is recorded on two axes: *charged* bytes (the paper's
/// communication-cost model, which bills replicated payloads even when the
/// shuffle physically carries only element ids) and *moved* bytes (what
/// actually crossed between stores). `remote_bytes`/`local_bytes` keep
/// their original charged semantics so experiment figures are stable; the
/// `*_moved_bytes` accessors expose the physical series.
#[derive(Debug, Default)]
pub struct TrafficAccountant {
    remote_bytes: AtomicU64,
    remote_transfers: AtomicU64,
    local_bytes: AtomicU64,
    remote_moved_bytes: AtomicU64,
    local_moved_bytes: AtomicU64,
    simulated_time_us: AtomicU64,
    telemetry: Telemetry,
}

impl TrafficAccountant {
    /// Creates an accountant with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a telemetry handle: every subsequent transfer is also
    /// emitted as a telemetry event (aggregated per directed link).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Records a transfer of `bytes` from `src` to `dst` under `model`.
    /// Returns the simulated transfer time in microseconds (0 for local).
    ///
    /// Charged and moved bytes coincide; use [`Self::record_with_charge`]
    /// when the model bills more than what physically moved.
    pub fn record(&self, model: &NetworkModel, src: NodeId, dst: NodeId, bytes: u64) -> u64 {
        self.record_with_charge(model, src, dst, bytes, bytes)
    }

    /// Records a transfer whose physically `moved` bytes differ from the
    /// `charged` bytes billed by the paper's cost model (e.g. an id-only
    /// shuffle that stands in for replicated payloads). Simulated time and
    /// telemetry follow the charged series so the cost model is unchanged.
    /// Returns the simulated transfer time in microseconds (0 for local).
    pub fn record_with_charge(
        &self,
        model: &NetworkModel,
        src: NodeId,
        dst: NodeId,
        moved: u64,
        charged: u64,
    ) -> u64 {
        if src == dst {
            self.local_bytes.fetch_add(charged, Ordering::Relaxed);
            self.local_moved_bytes.fetch_add(moved, Ordering::Relaxed);
            self.telemetry.transfer(src.0, dst.0, charged, 0);
            0
        } else {
            self.remote_bytes.fetch_add(charged, Ordering::Relaxed);
            self.remote_moved_bytes.fetch_add(moved, Ordering::Relaxed);
            self.remote_transfers.fetch_add(1, Ordering::Relaxed);
            let t = model.transfer_time_us(charged);
            self.simulated_time_us.fetch_add(t, Ordering::Relaxed);
            self.telemetry.transfer(src.0, dst.0, charged, t);
            t
        }
    }

    /// Records a broadcast of `bytes` from `src` to every node in
    /// `0..num_nodes` (used by the distributed cache; paper §5.1).
    pub fn record_broadcast(
        &self,
        model: &NetworkModel,
        src: NodeId,
        num_nodes: usize,
        bytes: u64,
    ) {
        for n in 0..num_nodes {
            self.record(model, src, NodeId(n as u32), bytes);
        }
    }

    /// Total bytes moved across the network (excluding node-local moves).
    pub fn remote_bytes(&self) -> u64 {
        self.remote_bytes.load(Ordering::Relaxed)
    }

    /// Number of remote transfers recorded.
    pub fn remote_transfers(&self) -> u64 {
        self.remote_transfers.load(Ordering::Relaxed)
    }

    /// Total bytes moved node-locally.
    pub fn local_bytes(&self) -> u64 {
        self.local_bytes.load(Ordering::Relaxed)
    }

    /// Bytes that physically crossed the network (the moved series of
    /// [`Self::remote_bytes`], which stays on charged semantics).
    pub fn remote_moved_bytes(&self) -> u64 {
        self.remote_moved_bytes.load(Ordering::Relaxed)
    }

    /// Bytes that physically moved node-locally.
    pub fn local_moved_bytes(&self) -> u64 {
        self.local_moved_bytes.load(Ordering::Relaxed)
    }

    /// Sum of simulated transfer times, in microseconds. (An upper bound on
    /// wall time: real transfers overlap.)
    pub fn simulated_time_us(&self) -> u64 {
        self.simulated_time_us.load(Ordering::Relaxed)
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.remote_bytes.store(0, Ordering::Relaxed);
        self.remote_transfers.store(0, Ordering::Relaxed);
        self.local_bytes.store(0, Ordering::Relaxed);
        self.remote_moved_bytes.store(0, Ordering::Relaxed);
        self.local_moved_bytes.store(0, Ordering::Relaxed);
        self.simulated_time_us.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_includes_latency() {
        let m = NetworkModel { latency_us: 100, bandwidth_bytes_per_sec: 1_000_000 };
        assert_eq!(m.transfer_time_us(0), 100);
        assert_eq!(m.transfer_time_us(1_000_000), 100 + 1_000_000);
    }

    #[test]
    fn local_transfers_do_not_count_as_remote() {
        let acc = TrafficAccountant::new();
        let m = NetworkModel::default();
        acc.record(&m, NodeId(0), NodeId(0), 500);
        acc.record(&m, NodeId(0), NodeId(1), 700);
        assert_eq!(acc.local_bytes(), 500);
        assert_eq!(acc.remote_bytes(), 700);
        assert_eq!(acc.remote_transfers(), 1);
        assert!(acc.simulated_time_us() > 0);
    }

    #[test]
    fn broadcast_hits_every_node() {
        let acc = TrafficAccountant::new();
        let m = NetworkModel::default();
        acc.record_broadcast(&m, NodeId(0), 4, 100);
        // One of the four "transfers" is node-local (src itself).
        assert_eq!(acc.remote_bytes(), 300);
        assert_eq!(acc.local_bytes(), 100);
    }

    #[test]
    fn charged_and_moved_series_diverge() {
        let acc = TrafficAccountant::new();
        let m = NetworkModel { latency_us: 0, bandwidth_bytes_per_sec: 1_000_000 };
        // Id-only shuffle: 24 bytes move, 600 payload bytes are charged.
        acc.record_with_charge(&m, NodeId(0), NodeId(1), 24, 624);
        acc.record_with_charge(&m, NodeId(2), NodeId(2), 24, 624);
        assert_eq!(acc.remote_bytes(), 624);
        assert_eq!(acc.remote_moved_bytes(), 24);
        assert_eq!(acc.local_bytes(), 624);
        assert_eq!(acc.local_moved_bytes(), 24);
        // Simulated time is billed on charged bytes.
        assert_eq!(acc.simulated_time_us(), m.transfer_time_us(624));
    }

    #[test]
    fn reset_zeroes_counters() {
        let acc = TrafficAccountant::new();
        acc.record(&NetworkModel::default(), NodeId(0), NodeId(1), 10);
        acc.reset();
        assert_eq!(acc.remote_bytes(), 0);
        assert_eq!(acc.simulated_time_us(), 0);
    }
}
