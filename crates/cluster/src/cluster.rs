//! The assembled cluster: nodes + DFS + network + failure injection,
//! over a pluggable [`Transport`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use pmr_obs::Telemetry;

use crate::config::{ClusterConfig, TransportKind};
use crate::dfs::Dfs;
use crate::error::{ClusterError, Result};
use crate::failure::{ChaosPlan, FailureInjector};
use crate::ids::NodeId;
use crate::memory::MemoryGauge;
use crate::network::TrafficAccountant;
use crate::node::Node;
use crate::transport::{
    InProcessTransport, MultiProcessTransport, Transport, WireSnapshot, WorkerInfo,
};

/// Mutable state of the deterministic crash schedule.
#[derive(Debug)]
struct ChaosRuntime {
    /// `(completed-task threshold, victim)` pairs, ascending.
    plan: Vec<(u64, NodeId)>,
    /// Index of the next crash to fire.
    next: usize,
    /// Tasks committed so far (drives the thresholds).
    completed: u64,
}

/// A simulated shared-nothing cluster (paper §3's execution model).
pub struct Cluster {
    config: ClusterConfig,
    transport: Arc<dyn Transport>,
    nodes: Vec<Arc<Node>>,
    dfs: Dfs,
    traffic: TrafficAccountant,
    injector: FailureInjector,
    telemetry: Telemetry,
    /// Model-charged intermediate bytes with no physical backing (e.g.
    /// payload bytes an id-only shuffle no longer materializes). Counted
    /// into [`Cluster::intermediate_bytes`] so the paper's `maxis` cap
    /// keeps billing the full replicated volume.
    charged_extra: std::sync::atomic::AtomicU64,
    chaos: Mutex<ChaosRuntime>,
    crashes: AtomicU64,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("config", &self.config)
            .field("transport", &self.transport.name())
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl Cluster {
    /// Builds a cluster from a configuration.
    ///
    /// Panics when the transport cannot be brought up (only possible with
    /// [`TransportKind::Process`]); use [`Cluster::try_new`] to handle
    /// that gracefully.
    pub fn new(config: ClusterConfig) -> Cluster {
        Cluster::try_new(config).expect("cluster construction failed")
    }

    /// Builds a cluster from a configuration, surfacing transport
    /// bring-up failures (missing worker binary, socket trouble,
    /// handshake timeout) as [`ClusterError::Transport`].
    pub fn try_new(config: ClusterConfig) -> Result<Cluster> {
        assert!(config.num_nodes > 0, "cluster needs at least one node");
        let transport: Arc<dyn Transport> = match config.transport {
            TransportKind::InProcess => Arc::new(InProcessTransport::new(config.num_nodes)),
            TransportKind::Process { socket } => {
                Arc::new(MultiProcessTransport::spawn(config.num_nodes, socket)?)
            }
        };
        let nodes: Vec<Arc<Node>> = (0..config.num_nodes)
            .map(|i| {
                let id = NodeId(i as u32);
                Arc::new(Node::with_store(id, config.node.storage_capacity, transport.store(id)))
            })
            .collect();
        let stores = (0..config.num_nodes).map(|i| transport.store(NodeId(i as u32))).collect();
        let dfs = Dfs::with_stores(config.dfs_block_size, config.dfs_replication, stores);
        let injector = FailureInjector::new(config.task_failure_probability, config.seed);
        let plan = if config.chaos_nodes > 0 {
            ChaosPlan::new(config.chaos_nodes, config.chaos_seed, config.num_nodes)
                .crashes()
                .to_vec()
        } else {
            Vec::new()
        };
        Ok(Cluster {
            config,
            transport,
            nodes,
            dfs,
            traffic: TrafficAccountant::new(),
            injector,
            telemetry: Telemetry::disabled(),
            charged_extra: std::sync::atomic::AtomicU64::new(0),
            chaos: Mutex::new(ChaosRuntime { plan, next: 0, completed: 0 }),
            crashes: AtomicU64::new(0),
        })
    }

    /// The transport backing node-local storage.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// True when node storage lives in separate worker processes.
    pub fn is_distributed(&self) -> bool {
        self.transport.is_distributed()
    }

    /// Payload bytes physically serialized over worker sockets so far
    /// (all zero on the in-process transport).
    pub fn wire_snapshot(&self) -> WireSnapshot {
        self.transport.wire_snapshot()
    }

    /// The worker process table (empty on the in-process transport).
    pub fn workers(&self) -> Vec<WorkerInfo> {
        self.transport.workers()
    }

    /// Ships `data` once to every live worker's store under `name` —
    /// the §5.1 element-store distribution step. The shipment is
    /// *unledgered*: physically measured on the wire (the `seed` class)
    /// but never billed as intermediate data, so charged counters stay
    /// identical across transports. A no-op in-process, where every
    /// "worker" already shares the coordinator's memory.
    pub fn seed_workers(&self, name: &str, data: &Bytes) -> Result<()> {
        if !self.is_distributed() {
            return Ok(());
        }
        for node in self.live_nodes() {
            self.transport.store(node).put(name, data.clone())?;
        }
        Ok(())
    }

    /// Attaches a telemetry handle (builder-style, before the cluster is
    /// shared): the DFS emits placement events and the traffic accountant
    /// emits transfer events into it, and the engine picks it up from
    /// here for task spans and job phases. On a distributed transport
    /// with telemetry enabled this also switches worker-side tracing on
    /// and estimates each worker's clock offset.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Cluster {
        self.traffic.set_telemetry(telemetry.clone());
        self.dfs.set_telemetry(telemetry.clone());
        self.transport.set_telemetry(&telemetry);
        self.telemetry = telemetry;
        self
    }

    /// Drains every live worker's trace ring into the telemetry sink,
    /// rebasing worker timestamps onto the coordinator's epoch; dead
    /// workers get a one-time `worker.lost` mark. A no-op in-process or
    /// when telemetry is disabled.
    pub fn drain_worker_traces(&self) {
        self.transport.drain_traces();
    }

    /// The telemetry handle events are recorded into (disabled unless
    /// attached with [`Cluster::with_telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of nodes `n`.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Handle to a node.
    pub fn node(&self, id: NodeId) -> &Arc<Node> {
        &self.nodes[id.index()]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Arc<Node>] {
        &self.nodes
    }

    /// The distributed file system.
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// The network traffic accountant.
    pub fn traffic(&self) -> &TrafficAccountant {
        &self.traffic
    }

    /// The failure injector.
    pub fn injector(&self) -> &FailureInjector {
        &self.injector
    }

    /// Creates a task-scoped memory gauge honoring the configured `maxws`.
    pub fn task_memory_gauge(&self) -> MemoryGauge {
        MemoryGauge::new(self.config.node.task_memory_budget)
    }

    /// True iff the node has not crashed.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes[id.index()].is_alive()
    }

    /// Ids of nodes that have not crashed, ascending.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        self.nodes.iter().filter(|n| n.is_alive()).map(|n| n.id()).collect()
    }

    /// Number of node crashes so far.
    pub fn node_crashes(&self) -> u64 {
        self.crashes.load(Ordering::Relaxed)
    }

    /// Notes one committed task against the chaos schedule; when the
    /// completion count reaches the next planned crash point, the planned
    /// victim crashes. Returns the victim if a crash fired.
    ///
    /// Called by the engine each time a task attempt commits. With chaos
    /// disabled (`chaos_nodes == 0`) the plan is empty and this is a cheap
    /// counter bump.
    pub fn note_task_completion(&self) -> Option<NodeId> {
        let victim = {
            let mut rt = self.chaos.lock();
            rt.completed += 1;
            if rt.next < rt.plan.len() && rt.completed >= rt.plan[rt.next].0 {
                let v = rt.plan[rt.next].1;
                rt.next += 1;
                Some(v)
            } else {
                None
            }
        };
        victim.filter(|&v| self.crash_node(v))
    }

    /// Crashes a node: its local files (map outputs, cache copies) are
    /// lost, its DFS replicas are re-replicated onto live nodes (charged
    /// through the traffic accountant), and it accepts no further work.
    ///
    /// Refuses to crash the last live node (the cluster must stay able to
    /// finish the job) and is idempotent per node. Returns whether the node
    /// actually crashed.
    pub fn crash_node(&self, id: NodeId) -> bool {
        let node = &self.nodes[id.index()];
        if !node.is_alive() || self.nodes.iter().filter(|n| n.is_alive()).count() <= 1 {
            return false;
        }
        let (lost_files, lost_bytes) = node.crash();
        let (re_blocks, re_bytes) =
            self.dfs.handle_node_crash(id, &self.traffic, &self.config.network);
        self.crashes.fetch_add(1, Ordering::Relaxed);
        self.telemetry.event_traced(
            "node.crash",
            id.0,
            0,
            format!(
                "{id} crashed: lost {lost_files} local files ({lost_bytes} B); \
                 re-replicated {re_blocks} DFS blocks ({re_bytes} B)"
            ),
        );
        true
    }

    /// Bytes of node-local (intermediate) data currently billed across all
    /// nodes: physically materialized bytes plus any outstanding charged
    /// extra (see [`Cluster::charge_intermediate`]).
    pub fn intermediate_bytes(&self) -> u64 {
        let physical: u64 = self.nodes.iter().map(|n| n.storage_used()).sum();
        physical + self.charged_extra.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Bills `bytes` of intermediate storage that the paper's cost model
    /// charges but no file materializes (id-only shuffle standing in for
    /// replicated payloads). Balanced by [`Cluster::uncharge_intermediate`].
    pub fn charge_intermediate(&self, bytes: u64) {
        self.charged_extra.fetch_add(bytes, std::sync::atomic::Ordering::Relaxed);
    }

    /// Releases a prior [`Cluster::charge_intermediate`] billing (saturating).
    pub fn uncharge_intermediate(&self, bytes: u64) {
        let _ = self.charged_extra.fetch_update(
            std::sync::atomic::Ordering::Relaxed,
            std::sync::atomic::Ordering::Relaxed,
            |cur| Some(cur.saturating_sub(bytes)),
        );
    }

    /// Peak node-local bytes summed over nodes (upper bound on the true
    /// cluster-wide peak).
    pub fn intermediate_bytes_peak(&self) -> u64 {
        self.nodes.iter().map(|n| n.storage_peak()).sum()
    }

    /// Checks the cluster-wide intermediate-storage cap (`maxis`): errors if
    /// current usage exceeds it.
    pub fn check_intermediate_capacity(&self) -> Result<()> {
        if let Some(cap) = self.config.intermediate_storage_capacity {
            let used = self.intermediate_bytes();
            if used > cap {
                return Err(ClusterError::IntermediateStorageExceeded {
                    requested: used,
                    capacity: cap,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn assembly() {
        let c = Cluster::new(ClusterConfig::with_nodes(3));
        assert_eq!(c.num_nodes(), 3);
        assert_eq!(c.node(NodeId(1)).id(), NodeId(1));
        assert_eq!(c.intermediate_bytes(), 0);
        c.check_intermediate_capacity().unwrap();
    }

    #[test]
    fn charged_intermediate_counts_against_cap() {
        let c = Cluster::new(ClusterConfig::with_nodes(2).intermediate_storage(10));
        c.charge_intermediate(16);
        assert_eq!(c.intermediate_bytes(), 16);
        assert!(c.check_intermediate_capacity().is_err());
        c.uncharge_intermediate(16);
        assert_eq!(c.intermediate_bytes(), 0);
        c.check_intermediate_capacity().unwrap();
        // Uncharging below zero saturates rather than wrapping.
        c.uncharge_intermediate(1);
        assert_eq!(c.intermediate_bytes(), 0);
    }

    #[test]
    fn intermediate_cap_detected() {
        let c = Cluster::new(ClusterConfig::with_nodes(2).intermediate_storage(10));
        c.node(NodeId(0)).write_local("a", Bytes::from(vec![0u8; 8])).unwrap();
        c.check_intermediate_capacity().unwrap();
        c.node(NodeId(1)).write_local("b", Bytes::from(vec![0u8; 8])).unwrap();
        assert!(matches!(
            c.check_intermediate_capacity(),
            Err(ClusterError::IntermediateStorageExceeded { requested: 16, capacity: 10 })
        ));
    }

    #[test]
    fn crash_node_loses_local_files_and_marks_dead() {
        let c = Cluster::new(ClusterConfig::with_nodes(3));
        c.node(NodeId(1)).write_local("tmp", Bytes::from(vec![0u8; 8])).unwrap();
        assert!(c.crash_node(NodeId(1)));
        assert!(!c.is_alive(NodeId(1)));
        assert_eq!(c.live_nodes(), vec![NodeId(0), NodeId(2)]);
        assert_eq!(c.node_crashes(), 1);
        assert_eq!(c.node(NodeId(1)).storage_used(), 0);
        assert!(matches!(
            c.node(NodeId(1)).write_local("x", Bytes::new()),
            Err(ClusterError::NodeDead(NodeId(1)))
        ));
        // Idempotent.
        assert!(!c.crash_node(NodeId(1)));
        assert_eq!(c.node_crashes(), 1);
    }

    #[test]
    fn last_live_node_cannot_crash() {
        let c = Cluster::new(ClusterConfig::with_nodes(2));
        assert!(c.crash_node(NodeId(0)));
        assert!(!c.crash_node(NodeId(1)), "the last live node must survive");
        assert!(c.is_alive(NodeId(1)));
    }

    #[test]
    fn chaos_schedule_fires_on_task_completions() {
        let c = Cluster::new(ClusterConfig::with_nodes(4).chaos(2, 42));
        let mut victims = Vec::new();
        for _ in 0..64 {
            if let Some(v) = c.note_task_completion() {
                victims.push(v);
            }
        }
        assert_eq!(victims.len(), 2, "both planned crashes fire");
        assert_eq!(c.node_crashes(), 2);
        assert_eq!(c.live_nodes().len(), 2);
        // Deterministic: a fresh cluster with the same seed crashes the
        // same nodes at the same points.
        let c2 = Cluster::new(ClusterConfig::with_nodes(4).chaos(2, 42));
        let mut victims2 = Vec::new();
        for _ in 0..64 {
            if let Some(v) = c2.note_task_completion() {
                victims2.push(v);
            }
        }
        assert_eq!(victims, victims2);
    }

    #[test]
    fn no_chaos_means_no_crashes() {
        let c = Cluster::new(ClusterConfig::with_nodes(2));
        for _ in 0..100 {
            assert_eq!(c.note_task_completion(), None);
        }
        assert_eq!(c.node_crashes(), 0);
    }

    #[test]
    fn memory_gauge_uses_config() {
        let c = Cluster::new(ClusterConfig::with_nodes(1).task_memory_budget(64));
        let g = c.task_memory_gauge();
        assert!(g.try_reserve(64).is_ok());
        assert!(g.try_reserve(1).is_err());
    }
}
