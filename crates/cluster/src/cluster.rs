//! The assembled cluster: nodes + DFS + network + failure injection.

use std::sync::Arc;

use pmr_obs::Telemetry;

use crate::config::ClusterConfig;
use crate::dfs::Dfs;
use crate::error::{ClusterError, Result};
use crate::failure::FailureInjector;
use crate::ids::NodeId;
use crate::memory::MemoryGauge;
use crate::network::TrafficAccountant;
use crate::node::Node;

/// A simulated shared-nothing cluster (paper §3's execution model).
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    nodes: Vec<Arc<Node>>,
    dfs: Dfs,
    traffic: TrafficAccountant,
    injector: FailureInjector,
    telemetry: Telemetry,
    /// Model-charged intermediate bytes with no physical backing (e.g.
    /// payload bytes an id-only shuffle no longer materializes). Counted
    /// into [`Cluster::intermediate_bytes`] so the paper's `maxis` cap
    /// keeps billing the full replicated volume.
    charged_extra: std::sync::atomic::AtomicU64,
}

impl Cluster {
    /// Builds a cluster from a configuration.
    pub fn new(config: ClusterConfig) -> Cluster {
        assert!(config.num_nodes > 0, "cluster needs at least one node");
        let nodes = (0..config.num_nodes)
            .map(|i| Arc::new(Node::new(NodeId(i as u32), config.node.storage_capacity)))
            .collect();
        let dfs = Dfs::new(config.num_nodes, config.dfs_block_size, config.dfs_replication);
        let injector = FailureInjector::new(config.task_failure_probability, config.seed);
        Cluster {
            config,
            nodes,
            dfs,
            traffic: TrafficAccountant::new(),
            injector,
            telemetry: Telemetry::disabled(),
            charged_extra: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Attaches a telemetry handle (builder-style, before the cluster is
    /// shared): the DFS emits placement events and the traffic accountant
    /// emits transfer events into it, and the engine picks it up from
    /// here for task spans and job phases.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Cluster {
        self.traffic.set_telemetry(telemetry.clone());
        self.dfs.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// The telemetry handle events are recorded into (disabled unless
    /// attached with [`Cluster::with_telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of nodes `n`.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Handle to a node.
    pub fn node(&self, id: NodeId) -> &Arc<Node> {
        &self.nodes[id.index()]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Arc<Node>] {
        &self.nodes
    }

    /// The distributed file system.
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// The network traffic accountant.
    pub fn traffic(&self) -> &TrafficAccountant {
        &self.traffic
    }

    /// The failure injector.
    pub fn injector(&self) -> &FailureInjector {
        &self.injector
    }

    /// Creates a task-scoped memory gauge honoring the configured `maxws`.
    pub fn task_memory_gauge(&self) -> MemoryGauge {
        MemoryGauge::new(self.config.node.task_memory_budget)
    }

    /// Bytes of node-local (intermediate) data currently billed across all
    /// nodes: physically materialized bytes plus any outstanding charged
    /// extra (see [`Cluster::charge_intermediate`]).
    pub fn intermediate_bytes(&self) -> u64 {
        let physical: u64 = self.nodes.iter().map(|n| n.storage_used()).sum();
        physical + self.charged_extra.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Bills `bytes` of intermediate storage that the paper's cost model
    /// charges but no file materializes (id-only shuffle standing in for
    /// replicated payloads). Balanced by [`Cluster::uncharge_intermediate`].
    pub fn charge_intermediate(&self, bytes: u64) {
        self.charged_extra.fetch_add(bytes, std::sync::atomic::Ordering::Relaxed);
    }

    /// Releases a prior [`Cluster::charge_intermediate`] billing (saturating).
    pub fn uncharge_intermediate(&self, bytes: u64) {
        let _ = self.charged_extra.fetch_update(
            std::sync::atomic::Ordering::Relaxed,
            std::sync::atomic::Ordering::Relaxed,
            |cur| Some(cur.saturating_sub(bytes)),
        );
    }

    /// Peak node-local bytes summed over nodes (upper bound on the true
    /// cluster-wide peak).
    pub fn intermediate_bytes_peak(&self) -> u64 {
        self.nodes.iter().map(|n| n.storage_peak()).sum()
    }

    /// Checks the cluster-wide intermediate-storage cap (`maxis`): errors if
    /// current usage exceeds it.
    pub fn check_intermediate_capacity(&self) -> Result<()> {
        if let Some(cap) = self.config.intermediate_storage_capacity {
            let used = self.intermediate_bytes();
            if used > cap {
                return Err(ClusterError::IntermediateStorageExceeded {
                    requested: used,
                    capacity: cap,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn assembly() {
        let c = Cluster::new(ClusterConfig::with_nodes(3));
        assert_eq!(c.num_nodes(), 3);
        assert_eq!(c.node(NodeId(1)).id(), NodeId(1));
        assert_eq!(c.intermediate_bytes(), 0);
        c.check_intermediate_capacity().unwrap();
    }

    #[test]
    fn charged_intermediate_counts_against_cap() {
        let c = Cluster::new(ClusterConfig::with_nodes(2).intermediate_storage(10));
        c.charge_intermediate(16);
        assert_eq!(c.intermediate_bytes(), 16);
        assert!(c.check_intermediate_capacity().is_err());
        c.uncharge_intermediate(16);
        assert_eq!(c.intermediate_bytes(), 0);
        c.check_intermediate_capacity().unwrap();
        // Uncharging below zero saturates rather than wrapping.
        c.uncharge_intermediate(1);
        assert_eq!(c.intermediate_bytes(), 0);
    }

    #[test]
    fn intermediate_cap_detected() {
        let c = Cluster::new(ClusterConfig::with_nodes(2).intermediate_storage(10));
        c.node(NodeId(0)).write_local("a", Bytes::from(vec![0u8; 8])).unwrap();
        c.check_intermediate_capacity().unwrap();
        c.node(NodeId(1)).write_local("b", Bytes::from(vec![0u8; 8])).unwrap();
        assert!(matches!(
            c.check_intermediate_capacity(),
            Err(ClusterError::IntermediateStorageExceeded { requested: 16, capacity: 10 })
        ));
    }

    #[test]
    fn memory_gauge_uses_config() {
        let c = Cluster::new(ClusterConfig::with_nodes(1).task_memory_budget(64));
        let g = c.task_memory_gauge();
        assert!(g.try_reserve(64).is_ok());
        assert!(g.try_reserve(1).is_err());
    }
}
