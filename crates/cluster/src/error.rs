//! Error type for cluster-resource violations.
//!
//! The paper's feasibility analysis (§6) revolves around two environment
//! limits: per-task main memory (`maxws`) and intermediate storage
//! (`maxis`). These errors are how the simulator surfaces a limit being hit,
//! which the experiment harness turns into the "maximum dataset size before
//! the limit is reached" curves of Figures 8 and 9.

use std::fmt;

/// Resource-violation and lookup errors raised by the simulated cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A task tried to hold more memory than its working-set budget
    /// (the paper's `maxws`).
    MemoryExceeded {
        /// Bytes the task attempted to have reserved in total.
        requested: u64,
        /// The configured per-task budget.
        budget: u64,
    },
    /// A node's local storage for intermediate data overflowed.
    NodeStorageExceeded {
        /// Node that overflowed.
        node: crate::ids::NodeId,
        /// Bytes the node would have held.
        requested: u64,
        /// The configured per-node capacity.
        capacity: u64,
    },
    /// Cluster-wide intermediate storage overflowed (the paper's `maxis`).
    IntermediateStorageExceeded {
        /// Bytes the cluster would have held in intermediate data.
        requested: u64,
        /// The configured cluster-wide capacity.
        capacity: u64,
    },
    /// A DFS path does not exist.
    NoSuchFile(String),
    /// The node has crashed: its local files are lost and it accepts no
    /// further reads or writes.
    NodeDead(crate::ids::NodeId),
    /// A DFS path already exists (DFS files are immutable once written).
    FileExists(String),
    /// An injected (simulated) task failure.
    InjectedFailure {
        /// Description of the failed task attempt.
        task: String,
    },
    /// The multi-process transport could not be brought up (worker binary
    /// missing, socket bind failure, handshake timeout). Distinct from
    /// [`ClusterError::NodeDead`], which covers workers lost *after* a
    /// successful start.
    Transport(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::MemoryExceeded { requested, budget } => write!(
                f,
                "task memory budget exceeded: requested {requested} B, budget {budget} B (maxws)"
            ),
            ClusterError::NodeStorageExceeded { node, requested, capacity } => write!(
                f,
                "node {node:?} storage exceeded: {requested} B requested, capacity {capacity} B"
            ),
            ClusterError::IntermediateStorageExceeded { requested, capacity } => write!(
                f,
                "cluster intermediate storage exceeded: {requested} B requested, capacity {capacity} B (maxis)"
            ),
            ClusterError::NoSuchFile(p) => write!(f, "no such DFS file: {p}"),
            ClusterError::NodeDead(n) => write!(f, "{n} is dead (crashed)"),
            ClusterError::FileExists(p) => write!(f, "DFS file already exists: {p}"),
            ClusterError::InjectedFailure { task } => write!(f, "injected failure in {task}"),
            ClusterError::Transport(msg) => write!(f, "transport failure: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Convenience alias used across the cluster and MapReduce crates.
pub type Result<T> = std::result::Result<T, ClusterError>;
