//! Multi-process transport parity: for every scheme × fusion combination
//! the in-process and multi-process transports must produce bit-identical
//! output and identical *charged* counters, and on healthy runs the bytes
//! physically measured on the worker sockets must equal the reported
//! `mr.{map.output,shuffle}.moved.bytes` exactly. A SIGKILL'd real worker
//! process is recovered from without changing the output.
//!
//! Run `cargo build -p pmr-cluster --bin pmr-worker` first when invoking
//! this file outside a full workspace build (the tests spawn that binary).

use std::sync::Arc;

use pairwise_mr::apps::distance::euclidean_comp;
use pairwise_mr::apps::generate::gaussian_clusters;
use pairwise_mr::mapreduce::builtin;
use pairwise_mr::prelude::*;

fn process_config(n: usize) -> ClusterConfig {
    ClusterConfig::with_nodes(n).transport(TransportKind::Process { socket: SocketMode::Uds })
}

fn moved(run: &PairwiseRun<f64>, counter: &str) -> u64 {
    run.mr
        .iter()
        .flat_map(|r| std::iter::once(&r.job1).chain(r.job2.as_ref()))
        .map(|j| j.counters.get(counter).copied().unwrap_or(0))
        .sum()
}

fn run_on(
    cluster: &Cluster,
    scheme: Arc<dyn DistributionScheme>,
    points: &[pairwise_mr::apps::DenseVector],
    fuse: bool,
) -> PairwiseRun<f64> {
    let job = PairwiseJob::new(points, euclidean_comp()).backend(Backend::Mr(cluster)).fuse(fuse);
    // The broadcast scheme runs the paper's §5.1 single-job
    // distributed-cache variant; everything else the two-job pipeline.
    let v = points.len() as u64;
    let job = if scheme.name() == "broadcast" {
        job.broadcast(BroadcastScheme::new(v, scheme.num_tasks()))
    } else {
        job.scheme_arc(scheme)
    };
    job.run().expect("pairwise run")
}

/// The full parity matrix: scheme × fused/unfused, in-process vs real
/// worker processes over UDS.
#[test]
fn output_and_charged_counters_identical_across_transports() {
    let (points, _) = gaussian_clusters(36, 3, 2, 0.5, 7);
    let v = points.len() as u64;
    let schemes: Vec<Arc<dyn DistributionScheme>> = vec![
        Arc::new(BlockScheme::new(v, 4)),
        Arc::new(PairedBlockScheme::new(v, 4)),
        Arc::new(BroadcastScheme::new(v, 6)),
        Arc::new(DesignScheme::new(v)),
        Arc::new(QuorumScheme::new(v)),
    ];
    for fuse in [true, false] {
        for scheme in &schemes {
            let label = format!("{}/fuse={fuse}", scheme.name());
            let inproc = Cluster::new(ClusterConfig::with_nodes(3));
            let a = run_on(&inproc, Arc::clone(scheme), &points, fuse);
            let proc_cluster = Cluster::try_new(process_config(3)).expect("spawn workers");
            let b = run_on(&proc_cluster, Arc::clone(scheme), &points, fuse);

            assert_eq!(a.output, b.output, "{label}: output must be bit-identical");

            // Every deterministic charged / model-level number is
            // transport-invariant. (`network_bytes` and
            // `peak_intermediate_bytes` depend on which node the
            // work-stealing scheduler happened to place each task on and
            // vary between two identical in-process runs already, so they
            // are no parity criterion.)
            let (ra, rb) = (&a.mr[0], &b.mr[0]);
            assert_eq!(ra.evaluations, rb.evaluations, "{label}");
            assert_eq!(ra.replicated_records, rb.replicated_records, "{label}");
            assert_eq!(ra.shuffle_bytes, rb.shuffle_bytes, "{label}");
            assert_eq!(ra.shuffle_moved_bytes, rb.shuffle_moved_bytes, "{label}");
            assert_eq!(ra.max_working_set_bytes, rb.max_working_set_bytes, "{label}");
            assert_eq!(ra.fused, rb.fused, "{label}");

            // The in-process transport never touches a socket; the
            // multi-process one physically moved exactly what the moved
            // counters reported (healthy run, no speculation).
            assert_eq!(ra.transport, "in-process");
            assert_eq!(ra.wire.total_bytes(), 0, "{label}");
            assert_eq!(rb.transport, "process");
            assert_eq!(
                rb.wire.shuffle_bytes,
                moved(&b, builtin::SHUFFLE_MOVED_BYTES),
                "{label}: wire shuffle bytes == mr.shuffle.moved.bytes"
            );
            assert_eq!(
                rb.wire.map_output_bytes,
                moved(&b, builtin::MAP_OUTPUT_MOVED_BYTES),
                "{label}: wire partition puts == mr.map.output.moved.bytes"
            );
            assert_eq!(rb.wire.shuffle_bytes, rb.shuffle_moved_bytes, "{label}");
            assert!(rb.wire.seed_bytes > 0, "{label}: store was shipped to the workers");
        }
    }
}

/// Chaos on the multi-process transport SIGKILLs a real worker process
/// mid-run; recovery re-runs the lost work and the output still matches a
/// healthy in-process run bit-for-bit. Losing attempts may put scratch on
/// the wire, so physically moved bytes can only exceed the charged-moved
/// counters — never undershoot them.
#[test]
fn sigkill_of_real_worker_is_recovered_with_identical_output() {
    let (points, _) = gaussian_clusters(30, 3, 2, 0.5, 11);
    let v = points.len() as u64;
    let healthy = Cluster::new(ClusterConfig::with_nodes(4));
    let reference = run_on(&healthy, Arc::new(BlockScheme::new(v, 4)), &points, true);

    let cluster = Cluster::try_new(process_config(4).chaos(1, 23)).expect("spawn workers");
    let chaotic = run_on(&cluster, Arc::new(BlockScheme::new(v, 4)), &points, true);

    assert_eq!(chaotic.output, reference.output, "output must survive a SIGKILL'd worker");
    let r = &chaotic.mr[0];
    assert_eq!(r.node_crashes, 1, "the chaos plan fired");
    let table = cluster.workers();
    let dead: Vec<_> = table.iter().filter(|w| !w.alive).collect();
    assert_eq!(dead.len(), 1, "exactly one worker process was killed: {table:?}");
    assert!(
        r.wire.shuffle_bytes >= r.shuffle_moved_bytes,
        "recovery may re-move data but never less than the counters claim"
    );
    assert!(r.wire.total_bytes() > 0);
}

/// TCP fallback: same output and charged counters as UDS on the same
/// seed, for environments without Unix-domain sockets.
#[test]
fn tcp_socket_mode_matches_uds() {
    let (points, _) = gaussian_clusters(24, 3, 2, 0.5, 5);
    let v = points.len() as u64;
    let uds = Cluster::try_new(process_config(2)).expect("spawn uds workers");
    let a = run_on(&uds, Arc::new(BlockScheme::new(v, 3)), &points, true);
    let tcp = Cluster::try_new(
        ClusterConfig::with_nodes(2).transport(TransportKind::Process { socket: SocketMode::Tcp }),
    )
    .expect("spawn tcp workers");
    let b = run_on(&tcp, Arc::new(BlockScheme::new(v, 3)), &points, true);
    assert_eq!(a.output, b.output);
    assert_eq!(a.mr[0].shuffle_bytes, b.mr[0].shuffle_bytes);
    assert_eq!(a.mr[0].wire.shuffle_bytes, b.mr[0].wire.shuffle_bytes);
}
