//! Thresholded-join pruning suite: prefix filtering must be *exact*
//! (recall 1.0 — the pruned join finds precisely the pairs at or above
//! the threshold), LSH banding must clear its recall target on near-dup
//! corpora, and a pruned run must stay byte-identical across every
//! scheme × backend × fusion × chaos combination.

use proptest::prelude::*;
use std::sync::Arc;

use pairwise_mr::apps::docsim::{cosine_comp, tfidf};
use pairwise_mr::apps::generate::zipf_documents;
use pairwise_mr::apps::prune::{LshFilter, PrefixFilter};
use pairwise_mr::apps::SparseVector;
use pairwise_mr::prelude::*;

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Random corpus over a small vocabulary (so similarities spread widely).
fn random_corpus(v: usize, vocab: u32, len: usize, seed: u64) -> Vec<SparseVector> {
    let mut s = seed;
    (0..v)
        .map(|_| {
            SparseVector::from_entries(
                (0..len)
                    .map(|_| (splitmix(&mut s) as u32 % vocab, 1.0 + (splitmix(&mut s) % 5) as f64))
                    .collect(),
            )
        })
        .collect()
}

/// Clustered corpus: `groups` groups of `per` members sharing a 12-term
/// core plus 2 private terms each — intra-group cosine 12/14 ≈ 0.857,
/// cross-group cosine 0. Gives a thresholded join with a known survivor
/// set and plenty to prune.
fn clustered_corpus(groups: u32, per: u32) -> Vec<SparseVector> {
    (0..groups)
        .flat_map(|g| {
            (0..per).map(move |m| {
                let base = g * 20;
                let entries: Vec<(u32, f64)> = (0..12)
                    .map(|i| (base + i, 1.0))
                    .chain([(base + 12 + 2 * m, 1.0), (base + 13 + 2 * m, 1.0)])
                    .collect();
                SparseVector::from_entries(entries)
            })
        })
        .collect()
}

fn keep_at_least(t: f64) -> Arc<dyn Aggregator<f64>> {
    Arc::new(FilterAggregator::new(move |r: &f64| *r >= t))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The prefix-filtered thresholded join finds exactly the pairs with
    /// cosine ≥ t that the exact all-pairs reference finds: recall 1.0,
    /// and byte-identical output (the filter only ever removes pairs the
    /// threshold would drop anyway).
    #[test]
    fn prefix_filter_recall_is_one(
        v in 8usize..28,
        vocab in 12u32..64,
        len in 4usize..12,
        seed in any::<u64>(),
        t_idx in 0usize..4,
    ) {
        let t = [0.5, 0.7, 0.85, 0.95][t_idx];
        let corpus = random_corpus(v, vocab, len, seed);
        let filter = PrefixFilter::build(&corpus, t);

        // Recall 1.0 against the brute-force pair set.
        for a in 0..v as u64 {
            for b in 0..a {
                let sim = corpus[a as usize].cosine(&corpus[b as usize]);
                if sim >= t {
                    prop_assert!(
                        filter.is_candidate(a, b),
                        "exactness violated: sim({a},{b})={sim} ≥ {t} was pruned"
                    );
                }
            }
        }

        // The pruned run's output is byte-identical to the exact one.
        let exact = PairwiseJob::new(&corpus, cosine_comp())
            .aggregator_arc(keep_at_least(t))
            .run()
            .unwrap();
        let pruned = PairwiseJob::new(&corpus, cosine_comp())
            .aggregator_arc(keep_at_least(t))
            .pair_filter(filter)
            .run()
            .unwrap();
        prop_assert_eq!(&exact.output, &pruned.output);

        // Pruning accounting: every enumerated pair is either pruned or
        // evaluated, and the counters mirror the report section.
        let p = pruned.report.pruning.as_ref().expect("filtered run reports pruning");
        prop_assert_eq!(p.candidates, (v * (v - 1) / 2) as u64);
        prop_assert_eq!(p.pruned + p.evaluated, p.candidates);
        prop_assert_eq!(pruned.evaluations(), p.evaluated);
        prop_assert_eq!(
            pruned.report.counter(CANDIDATE_PAIRS_COUNTER),
            Some(p.candidates)
        );
        // The unfiltered reference never grows the pruning counters.
        prop_assert!(exact.report.pruning.is_none());
        prop_assert_eq!(exact.report.counter(CANDIDATE_PAIRS_COUNTER), None);
        prop_assert_eq!(exact.report.counter(PRUNED_PAIRS_COUNTER), None);
    }
}

/// LSH banding at the default 32 × 2 geometry keeps ≥ 95 % of the pairs
/// a 0.8-cosine threshold wants, while pruning most dissimilar pairs.
#[test]
fn lsh_recall_at_default_geometry() {
    // Near-dup corpus: 40 base docs of 40 uniform-weight terms, each with
    // a twin sharing 36 of them (Jaccard ≈ 0.82, cosine 0.9).
    let mut s = 0xD0C5_1234u64;
    let mut corpus: Vec<SparseVector> = Vec::new();
    for d in 0..40u32 {
        let terms: Vec<u32> =
            (0..40).map(|_| d * 4096 + (splitmix(&mut s) % 2048) as u32).collect();
        let base: Vec<(u32, f64)> = terms.iter().map(|&t| (t, 1.0)).collect();
        let twin: Vec<(u32, f64)> = terms
            .iter()
            .enumerate()
            .map(|(i, &t)| if i < 36 { (t, 1.0) } else { (d * 4096 + 2048 + i as u32, 1.0) })
            .collect();
        corpus.push(SparseVector::from_entries(base));
        corpus.push(SparseVector::from_entries(twin));
    }
    let filter = LshFilter::with_defaults(&corpus);
    let (mut wanted, mut kept, mut cold, mut cold_kept) = (0u64, 0u64, 0u64, 0u64);
    for a in 0..corpus.len() as u64 {
        for b in 0..a {
            let sim = corpus[a as usize].cosine(&corpus[b as usize]);
            let candidate = filter.is_candidate(a, b);
            if sim >= 0.8 {
                wanted += 1;
                kept += candidate as u64;
            } else if sim < 0.2 {
                cold += 1;
                cold_kept += candidate as u64;
            }
        }
    }
    assert!(wanted >= 40, "corpus must contain the near-dup pairs, got {wanted}");
    let recall = kept as f64 / wanted as f64;
    assert!(recall >= 0.95, "LSH recall {recall} below 0.95 ({kept}/{wanted})");
    assert!(
        (cold_kept as f64) < 0.2 * cold as f64,
        "LSH admits too many dissimilar pairs: {cold_kept}/{cold}"
    );
}

/// One pruned run, every execution shape: the prefix-filtered thresholded
/// join must produce the byte-identical survivor set on all schemes, both
/// fusion modes, the local and MR backends, and under seeded node crashes
/// — all equal to the unfiltered sequential reference.
#[test]
fn pruned_runs_agree_across_schemes_backends_fusion_and_chaos() {
    let corpus = clustered_corpus(12, 3); // v = 36, survivors: 3 per group
    let v = corpus.len() as u64;
    let t = 0.7;
    let total_pairs = v * (v - 1) / 2;

    let reference =
        PairwiseJob::new(&corpus, cosine_comp()).aggregator_arc(keep_at_least(t)).run().unwrap();
    // The clustered corpus has a known survivor count.
    let survivors: usize = reference.output.per_element.iter().map(|(_, rs)| rs.len()).sum();
    assert_eq!(survivors, 12 * 3 * 2, "each group member pairs with its 2 peers");

    let filter = Arc::new(PrefixFilter::build(&corpus, t));
    let schemes: Vec<(&str, Arc<dyn DistributionScheme>)> = vec![
        ("block", Arc::new(BlockScheme::new(v, 5))),
        ("paired", Arc::new(PairedBlockScheme::new(v, 5))),
        ("broadcast", Arc::new(BroadcastScheme::new(v, 6))),
        ("design", Arc::new(DesignScheme::new(v))),
        ("quorum", Arc::new(QuorumScheme::new(v))),
    ];
    for (name, scheme) in &schemes {
        for fuse in [true, false] {
            let job = || {
                PairwiseJob::new(&corpus, cosine_comp())
                    .scheme_arc(Arc::clone(scheme))
                    .aggregator_arc(keep_at_least(t))
                    .pair_filter_arc(filter.clone())
                    .fuse(fuse)
            };
            let local = job().backend(Backend::Local { threads: 4 }).run().unwrap();
            assert_eq!(
                local.output, reference.output,
                "{name}/fuse={fuse}: local pruned output drifted"
            );
            let lp = local.report.pruning.as_ref().unwrap();
            assert_eq!(lp.candidates, total_pairs, "{name}/fuse={fuse}: local candidates");
            assert_eq!(lp.pruned + lp.evaluated, lp.candidates);

            let cluster = Cluster::new(ClusterConfig::with_nodes(4));
            let mr = job().backend(Backend::Mr(&cluster)).run().unwrap();
            assert_eq!(mr.output, reference.output, "{name}/fuse={fuse}: mr pruned output drifted");
            let mp = mr.report.pruning.as_ref().unwrap();
            assert_eq!(mp.candidates, total_pairs, "{name}/fuse={fuse}: mr candidates");
            assert_eq!(mp.pruned + mp.evaluated, mp.candidates);

            // Chaos: a crashed node must not double- or under-count the
            // pruning counters, and the output stays identical.
            let chaotic_cluster = Cluster::new(ClusterConfig::with_nodes(4).chaos(1, 23));
            let chaotic = job().backend(Backend::Mr(&chaotic_cluster)).run().unwrap();
            assert_eq!(
                chaotic.output, reference.output,
                "{name}/fuse={fuse}: chaotic pruned output drifted"
            );
            let cp = chaotic.report.pruning.as_ref().unwrap();
            assert_eq!(
                (cp.candidates, cp.pruned, cp.evaluated),
                (mp.candidates, mp.pruned, mp.evaluated),
                "{name}/fuse={fuse}: chaos changed the pruning tallies"
            );
        }
    }
}

/// The skewed-corpus pruning claim the bench records, asserted offline at
/// test scale: tf-idf + unit-normalized Zipf documents at threshold 0.8
/// evaluate an order of magnitude fewer pairs than the exact join.
#[test]
fn prefix_filter_prunes_skewed_corpus_hard() {
    let raw = zipf_documents(512, 4096, 48, 1.2, 11);
    let corpus: Vec<SparseVector> = tfidf(&raw)
        .into_iter()
        .map(|v| {
            let n = v.norm();
            if n == 0.0 {
                v
            } else {
                SparseVector(v.0.into_iter().map(|(i, w)| (i, w / n)).collect())
            }
        })
        .collect();
    let t = 0.8;
    let filter = PrefixFilter::build(&corpus, t);
    let run = PairwiseJob::new(&corpus, cosine_comp())
        .scheme(BlockScheme::new(512, 8))
        .aggregator_arc(keep_at_least(t))
        .pair_filter(filter)
        .backend(Backend::Local { threads: 4 })
        .run()
        .unwrap();
    let p = run.report.pruning.as_ref().unwrap();
    assert_eq!(p.candidates, 512 * 511 / 2);
    assert!(
        p.evaluated * 10 <= p.candidates,
        "expected ≥ 10× pruning, evaluated {} of {}",
        p.evaluated,
        p.candidates
    );
}
