//! Distributed tracing end-to-end over real worker processes: worker
//! rings drain into the coordinator's trace with clock-offset rebasing,
//! the merged per-class wire bytes reconcile exactly with the socket
//! byte counters on healthy runs, lanes stay monotone, a SIGKILL'd
//! worker is marked lost, and tracing stays zero-cost when disabled.
//!
//! Run `cargo build -p pmr-cluster --bin pmr-worker` first when invoking
//! this file outside a full workspace build (the tests spawn that binary).

use std::collections::BTreeMap;

use pairwise_mr::apps::distance::euclidean_comp;
use pairwise_mr::apps::generate::gaussian_clusters;
use pairwise_mr::obs::{export, JsonValue, RunReport};
use pairwise_mr::prelude::*;

fn process_config(n: usize) -> ClusterConfig {
    ClusterConfig::with_nodes(n).transport(TransportKind::Process { socket: SocketMode::Uds })
}

fn traced_run(cluster: &Cluster, telemetry: &Telemetry, seed: u64) -> PairwiseRun<f64> {
    let (points, _) = gaussian_clusters(36, 3, 2, 0.5, seed);
    let v = points.len() as u64;
    PairwiseJob::new(&points, euclidean_comp())
        .scheme(BlockScheme::new(v, 4))
        .backend(Backend::Mr(cluster))
        .telemetry(telemetry.clone())
        .run()
        .expect("pairwise run")
}

fn is_worker_op(kind: &str) -> bool {
    matches!(kind, "worker.put" | "worker.get" | "worker.remove" | "worker.remove_prefix")
}

/// Asserts every per-node worker lane has non-decreasing timestamps in
/// merge order and returns the number of worker-lane events seen.
fn assert_worker_lanes_monotone(report: &RunReport) -> u64 {
    let mut high: BTreeMap<u32, u64> = BTreeMap::new();
    let mut count = 0u64;
    for e in &report.trace {
        if !e.kind.starts_with("worker.") {
            continue;
        }
        let h = high.entry(e.node).or_insert(0);
        assert!(
            e.at_us >= *h,
            "worker lane {} went backwards: {} < {} at {}",
            e.node,
            e.at_us,
            h,
            e.kind
        );
        *h = e.at_us;
        count += 1;
    }
    count
}

/// The tentpole reconciliation: on a healthy traced run the bytes in the
/// merged worker PUT/GET spans sum *exactly* to the coordinator's
/// per-class socket byte counters — both sides observed the same frames.
#[test]
fn merged_worker_spans_sum_exactly_to_wire_class_totals() {
    let telemetry = Telemetry::enabled();
    let cluster = Cluster::try_new(process_config(3))
        .expect("spawn workers")
        .with_telemetry(telemetry.clone());
    let run = traced_run(&cluster, &telemetry, 7);
    let report = &run.report;
    assert_eq!(report.trace_dropped, 0, "coordinator ring must not drop in a run this small");

    let transport = report.transport.as_ref().expect("transport section");
    assert_eq!(transport.workers.len(), 3);
    for w in &transport.workers {
        assert!(w.alive, "healthy run");
        assert!(w.trace_events > 0, "worker {} drained no events", w.node);
        assert_eq!(w.trace_dropped, 0, "worker {} ring overflowed", w.node);
        assert!(
            w.offset_us.unsigned_abs() < 60_000_000,
            "implausible clock offset for worker {}: {} µs",
            w.node,
            w.offset_us
        );
    }

    // Group the merged worker ops by wire class (carried in `phase`).
    let mut by_class: BTreeMap<&str, u64> = BTreeMap::new();
    for e in &report.trace {
        if is_worker_op(e.kind) {
            *by_class.entry(e.phase.as_str()).or_default() += e.bytes;
        }
    }
    for (class, wire_bytes) in &transport.wire_bytes {
        assert_eq!(
            by_class.get(class.as_str()).copied().unwrap_or(0),
            *wire_bytes,
            "worker-span bytes must reconcile exactly with the socket counter for class {class}"
        );
    }
    assert!(transport.wire_bytes.iter().any(|(_, b)| *b > 0), "the run moved bytes");

    // Rebased lanes are monotone and every drained event made the merge.
    let lane_events = assert_worker_lanes_monotone(report);
    let drained: u64 = transport.workers.iter().map(|w| w.trace_events).sum();
    assert_eq!(lane_events, drained, "every drained worker event lands in the merged trace");
    assert!(
        report.trace.iter().any(|e| e.kind == "worker.heartbeat"),
        "periodic heartbeats ride along with the data spans"
    );
}

/// Zero-overhead guarantee on the multiprocess path: without telemetry
/// the workers never arm their rings, take no timestamps, and the
/// coordinator performs no ping exchange.
#[test]
fn untraced_process_run_records_no_worker_events() {
    let cluster = Cluster::try_new(process_config(2)).expect("spawn workers");
    let telemetry = Telemetry::disabled();
    let run = traced_run(&cluster, &telemetry, 13);
    assert!(run.report.trace.is_empty());
    for w in cluster.workers() {
        assert_eq!(w.trace_events, 0, "worker {} was traced while disabled", w.node.0);
        assert_eq!(w.trace_dropped, 0);
        assert_eq!(w.offset_us, 0, "no ping exchange should have run");
    }
}

/// Chaos leg: SIGKILL one worker mid-run. The merged trace still
/// parses and roundtrips, every lane stays monotone after rebasing, the
/// dead worker is marked lost exactly once at (or after) its last
/// observed sign of life, and the Chrome export stays schema-valid with
/// the surviving workers' real pids.
#[test]
fn sigkilled_worker_is_marked_lost_and_trace_stays_ordered() {
    let telemetry = Telemetry::enabled();
    let cluster = Cluster::try_new(process_config(4).chaos(1, 23))
        .expect("spawn workers")
        .with_telemetry(telemetry.clone());
    let run = traced_run(&cluster, &telemetry, 11);
    let report = &run.report;
    assert_eq!(run.mr[0].node_crashes, 1, "the chaos plan fired");

    let transport = report.transport.as_ref().expect("transport section");
    let dead: Vec<_> = transport.workers.iter().filter(|w| !w.alive).collect();
    assert_eq!(dead.len(), 1, "exactly one worker was killed: {:?}", transport.workers);

    let lost: Vec<_> = report.trace.iter().filter(|e| e.kind == "worker.lost").collect();
    assert_eq!(lost.len(), 1, "the dead worker is marked lost exactly once");
    assert_eq!(lost[0].node, dead[0].node);
    assert!(
        lost[0].detail.contains("unreachable"),
        "loss marker names the failure: {:?}",
        lost[0].detail
    );
    // Survivors still drained; lanes stay ordered through the crash.
    assert!(transport.workers.iter().filter(|w| w.alive).all(|w| w.trace_events > 0));
    assert_worker_lanes_monotone(report);

    // The merged trace survives a JSON roundtrip byte-for-byte.
    let json = report.to_json();
    let parsed = RunReport::from_json(&json).expect("chaotic report parses back");
    assert_eq!(parsed.to_json(), json);

    // Chrome export: valid JSON, per-lane monotone ts, worker ops on the
    // real-pid lanes of surviving workers, and the loss marker present.
    let chrome = export::chrome_trace(report);
    let v = JsonValue::parse(&chrome).expect("chrome trace parses");
    let events = v.get("traceEvents").unwrap().as_array().unwrap();
    let mut last_ts: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for e in events {
        for key in ["ph", "ts", "pid", "tid"] {
            assert!(e.get(key).is_some(), "event missing {key}: {e:?}");
        }
        let lane = (e.u64_or_zero("pid"), e.u64_or_zero("tid"));
        let ts = e.u64_or_zero("ts");
        let prev = last_ts.entry(lane).or_insert(0);
        assert!(ts >= *prev, "chrome lane {lane:?} not monotone");
        *prev = ts;
    }
    let real_pids: Vec<u64> = transport.workers.iter().map(|w| w.pid as u64).collect();
    let worker_op_pids: Vec<u64> = events
        .iter()
        .filter(|e| e.u64_or_zero("tid") == 5 && e.str_or_empty("ph") == "X")
        .map(|e| e.u64_or_zero("pid"))
        .collect();
    assert!(!worker_op_pids.is_empty(), "worker op slices exported");
    assert!(
        worker_op_pids.iter().all(|pid| real_pids.contains(pid)),
        "worker lanes must use real worker pids {real_pids:?}, got {worker_op_pids:?}"
    );
    assert!(
        events.iter().any(|e| e.str_or_empty("name") == "worker.lost"),
        "loss marker survives the export"
    );
}
