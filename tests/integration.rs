//! Workspace-spanning integration tests: applications running end-to-end
//! on the MapReduce pipeline, cross-backend equivalence, and the §7
//! hierarchical rounds — all through the `PairwiseJob` builder.

use std::sync::Arc;

use pairwise_mr::apps::covariance::{assemble_covariance, covariance_comp, top_eigenpairs};
use pairwise_mr::apps::distance::{dbscan, euclidean_comp, num_clusters};
use pairwise_mr::apps::docsim::{dot_comp, run_elsayed};
use pairwise_mr::apps::generate::{gaussian_clusters, random_matrix_rows, zipf_documents};
use pairwise_mr::core::hierarchical::{BatchedDesign, TwoLevelBlock};
use pairwise_mr::prelude::*;

#[test]
fn dbscan_identical_across_all_backends_and_schemes() {
    let (points, _) = gaussian_clusters(60, 3, 2, 0.5, 42);
    let v = points.len() as u64;
    let eps = 3.0;

    let reference = PairwiseJob::new(&points, euclidean_comp()).run().unwrap().output;
    let ref_labels = dbscan(&reference, eps, 4);
    assert_eq!(num_clusters(&ref_labels), 3);

    // Local backend, each scheme.
    let schemes: Vec<Arc<dyn DistributionScheme>> = vec![
        Arc::new(BroadcastScheme::new(v, 5)),
        Arc::new(BlockScheme::new(v, 4)),
        Arc::new(DesignScheme::new(v)),
    ];
    for s in &schemes {
        let run = PairwiseJob::new(&points, euclidean_comp())
            .scheme_arc(Arc::clone(s))
            .backend(Backend::Local { threads: 3 })
            .run()
            .unwrap();
        assert_eq!(dbscan(&run.output, eps, 4), ref_labels, "local/{}", s.name());
    }

    // MR backend with ε-pruning aggregation still yields the same clusters.
    let cluster = Cluster::new(ClusterConfig::with_nodes(3));
    let run = PairwiseJob::new(&points, euclidean_comp())
        .scheme(BlockScheme::new(v, 4))
        .backend(Backend::Mr(&cluster))
        .aggregator(FilterAggregator::new(move |d: &f64| *d <= eps))
        .run()
        .unwrap();
    assert_eq!(dbscan(&run.output, eps, 4), ref_labels, "mr/pruned");
}

#[test]
fn covariance_pca_on_mr_matches_sequential() {
    let rows = random_matrix_rows(24, 60, 9);
    let reference = PairwiseJob::new(&rows, covariance_comp()).run().unwrap().output;
    let cluster = Cluster::new(ClusterConfig::with_nodes(4));
    let out = PairwiseJob::new(&rows, covariance_comp())
        .scheme(DesignScheme::new(24))
        .backend(Backend::Mr(&cluster))
        .run()
        .unwrap()
        .output;
    assert_eq!(out, reference);
    let m_seq = assemble_covariance(&rows, &reference);
    let m_mr = assemble_covariance(&rows, &out);
    assert_eq!(m_seq, m_mr);
    let eigs = top_eigenpairs(&m_mr, 2, 200);
    assert!(eigs[0].0 >= eigs[1].0);
}

#[test]
fn elsayed_and_generic_pairwise_agree_via_mr() {
    let docs = zipf_documents(30, 300, 25, 1.0, 3);
    let cluster = Cluster::new(ClusterConfig::with_nodes(3));
    let pairwise = PairwiseJob::new(&docs, dot_comp())
        .scheme(BlockScheme::new(30, 3))
        .backend(Backend::Mr(&cluster))
        .run()
        .unwrap()
        .output;
    let cluster2 = Cluster::new(ClusterConfig::with_nodes(3));
    let baseline = run_elsayed(&cluster2, &docs, "it-elsayed").unwrap();
    for ((a, b), d) in &baseline.dot_products {
        let r =
            pairwise.results_of(*a).unwrap().iter().find(|(o, _)| o == b).map(|(_, r)| *r).unwrap();
        assert!((d - r).abs() < 1e-9 * (1.0 + r.abs()));
    }
}

#[test]
fn broadcast_cache_variant_equals_two_job_variant() {
    let payloads: Vec<u64> = (0..40u64).map(|i| i * 7 % 53).collect();
    let comp = comp_fn(|a: &u64, b: &u64| a.abs_diff(*b));
    let scheme = BroadcastScheme::new(40, 6);

    // `.scheme(...)` runs the broadcast scheme through the generic two-job
    // pipeline; `.broadcast(...)` takes the §5.1 distributed-cache path.
    let c1 = Cluster::new(ClusterConfig::with_nodes(3));
    let two_jobs = PairwiseJob::new(&payloads, Arc::clone(&comp))
        .scheme(scheme.clone())
        .backend(Backend::Mr(&c1))
        .run()
        .unwrap();

    let c2 = Cluster::new(ClusterConfig::with_nodes(3));
    let cache = PairwiseJob::new(&payloads, comp)
        .broadcast(scheme)
        .backend(Backend::Mr(&c2))
        .run()
        .unwrap();

    assert_eq!(two_jobs.output, cache.output);
    // The cache variant avoids shuffling v·p element copies through the
    // sort phase: its shuffle is strictly smaller.
    assert!(
        cache.mr[0].shuffle_bytes < two_jobs.mr[0].shuffle_bytes,
        "cache {} vs shuffle {}",
        cache.mr[0].shuffle_bytes,
        two_jobs.mr[0].shuffle_bytes
    );
}

#[test]
fn two_level_rounds_match_flat_and_bound_intermediate() {
    let payloads: Vec<u64> = (0..48u64).map(|i| i * 13 % 97).collect();
    let comp = comp_fn(|a: &u64, b: &u64| a.abs_diff(*b));
    let reference = PairwiseJob::new(&payloads, Arc::clone(&comp)).run().unwrap().output;

    let tlb = TwoLevelBlock::new(48, 3, 2);
    let rounds: Vec<Arc<dyn DistributionScheme>> =
        tlb.rounds().into_iter().map(Arc::from).collect();
    let cluster = Cluster::new(ClusterConfig::with_nodes(3));
    let hierarchical = PairwiseJob::new(&payloads, Arc::clone(&comp))
        .rounds(rounds)
        .backend(Backend::Mr(&cluster))
        .run()
        .unwrap();
    assert_eq!(hierarchical.output, reference);
    assert_eq!(hierarchical.mr.len() as u64, tlb.num_rounds());

    // Compare against the flat block scheme with matching task granularity.
    let cluster_flat = Cluster::new(ClusterConfig::with_nodes(3));
    let flat = PairwiseJob::new(&payloads, comp)
        .scheme(BlockScheme::new(48, 6))
        .backend(Backend::Mr(&cluster_flat))
        .run()
        .unwrap();
    assert_eq!(flat.output, reference);
    let max_round_peak = hierarchical.mr.iter().map(|r| r.peak_intermediate_bytes).max().unwrap();
    assert!(
        max_round_peak < flat.mr[0].peak_intermediate_bytes,
        "hierarchical rounds should bound intermediate storage: {} vs flat {}",
        max_round_peak,
        flat.mr[0].peak_intermediate_bytes
    );
}

#[test]
fn batched_design_rounds_match_flat_design() {
    let payloads: Vec<u64> = (0..31u64).map(|i| i * 11 % 89).collect();
    let comp = comp_fn(|a: &u64, b: &u64| a.abs_diff(*b));
    let reference = PairwiseJob::new(&payloads, Arc::clone(&comp)).run().unwrap().output;

    let bd = BatchedDesign::new(31, 4);
    let rounds: Vec<Arc<dyn DistributionScheme>> = (0..bd.num_rounds())
        .map(|r| Arc::new(bd.round(r)) as Arc<dyn DistributionScheme>)
        .collect();
    let cluster = Cluster::new(ClusterConfig::with_nodes(3));
    let run = PairwiseJob::new(&payloads, comp)
        .rounds(rounds)
        .backend(Backend::Mr(&cluster))
        .run()
        .unwrap();
    assert_eq!(run.output, reference);
    assert_eq!(run.mr.len(), 4);
}

#[test]
fn nonsymmetric_comp_consistent_across_backends() {
    let payloads: Vec<u64> = (0..26u64).collect();
    let comp = comp_fn(|a: &u64, b: &u64| a * 100 + b);
    let reference = PairwiseJob::new(&payloads, Arc::clone(&comp))
        .symmetry(Symmetry::NonSymmetric)
        .run()
        .unwrap()
        .output;
    let local = PairwiseJob::new(&payloads, Arc::clone(&comp))
        .scheme(DesignScheme::new(26))
        .backend(Backend::Local { threads: 2 })
        .symmetry(Symmetry::NonSymmetric)
        .run()
        .unwrap()
        .output;
    assert_eq!(local, reference);
    let cluster = Cluster::new(ClusterConfig::with_nodes(2));
    let mr = PairwiseJob::new(&payloads, comp)
        .scheme(DesignScheme::new(26))
        .backend(Backend::Mr(&cluster))
        .symmetry(Symmetry::NonSymmetric)
        .run()
        .unwrap()
        .output;
    assert_eq!(mr, reference);
}

#[test]
fn run_report_covers_mr_pipeline() {
    // The full observability path: telemetry on the cluster, a run through
    // the builder, and a report whose phases/counters are consistent.
    let payloads: Vec<u64> = (0..32u64).map(|i| i * 3 % 41).collect();
    let cluster = Cluster::new(ClusterConfig::with_nodes(3)).with_telemetry(Telemetry::enabled());
    let run = PairwiseJob::new(&payloads, comp_fn(|a: &u64, b: &u64| a.abs_diff(*b)))
        .scheme(BlockScheme::new(32, 4))
        .backend(Backend::Mr(&cluster))
        .run()
        .unwrap();
    let report = &run.report;
    assert!(report.wall_time_us > 0);
    assert!(report.task_spans.iter().any(|s| s.kind == "map"));
    assert!(report.task_spans.iter().any(|s| s.kind == "reduce"));
    assert!(!report.node_timelines.is_empty());
    assert!(report.meta.iter().any(|(k, v)| k == "scheme" && v == "block"));
    // Shuffle bytes recorded in the histogram agree with the counter total.
    let shuffle_hist = report
        .histograms
        .iter()
        .find(|(name, _)| name == "shuffle.bytes_per_partition")
        .map(|(_, h)| h.sum)
        .unwrap();
    let shuffle_counter = report.counter(pairwise_mr::mapreduce::builtin::SHUFFLE_BYTES).unwrap();
    assert_eq!(shuffle_hist, shuffle_counter);
    // JSON export round-trips through the writer without panicking and
    // carries the schema tag.
    let json = report.to_json();
    assert!(json.contains("\"schema\": \"pmr.run_report/8\""));
}

#[test]
fn trace_diff_names_the_scheme_with_the_longer_critical_path() {
    // Two seeded runs of the same workload under different blocking
    // factors: the diff must label each run distinguishably and name the
    // one whose critical path is actually longer.
    use pairwise_mr::obs::{CriticalPath, TraceDiff};
    let payloads: Vec<u64> = (0..48u64).map(|i| i * 37 % 101).collect();
    let comp = comp_fn(|a: &u64, b: &u64| a.wrapping_mul(31) ^ b);
    let run_with_h = |h: u64| {
        let cluster =
            Cluster::new(ClusterConfig::with_nodes(3)).with_telemetry(Telemetry::enabled());
        PairwiseJob::new(&payloads, Arc::clone(&comp))
            .scheme(BlockScheme::new(48, h))
            .backend(Backend::Mr(&cluster))
            .run()
            .unwrap()
    };
    let coarse = run_with_h(3);
    let fine = run_with_h(12);
    let diff = TraceDiff::compute(&coarse.report, &fine.report);
    assert_ne!(diff.label_a, diff.label_b, "task counts must distinguish the labels");
    let cp_a = CriticalPath::from_report(&coarse.report).unwrap();
    let cp_b = CriticalPath::from_report(&fine.report).unwrap();
    assert_eq!(diff.critical_path_us, (cp_a.duration_us, cp_b.duration_us));
    let expected = if cp_a.duration_us >= cp_b.duration_us { &diff.label_a } else { &diff.label_b };
    assert_eq!(&diff.longer_critical_path, expected);
    // Attribution categories tile each chain exactly.
    let (c, s, r, w) = diff.attribution_a;
    assert_eq!(c + s + r + w, cp_a.duration_us);
    let (c, s, r, w) = diff.attribution_b;
    assert_eq!(c + s + r + w, cp_b.duration_us);
}
