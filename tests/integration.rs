//! Workspace-spanning integration tests: applications running end-to-end
//! on the MapReduce pipeline, cross-backend equivalence, and the §7
//! hierarchical rounds.

use std::sync::Arc;

use pairwise_mr::apps::covariance::{assemble_covariance, covariance_comp, top_eigenpairs};
use pairwise_mr::apps::distance::{dbscan, euclidean_comp, num_clusters};
use pairwise_mr::apps::generate::{gaussian_clusters, random_matrix_rows, zipf_documents};
use pairwise_mr::apps::docsim::{dot_comp, run_elsayed};
use pairwise_mr::cluster::{Cluster, ClusterConfig};
use pairwise_mr::core::hierarchical::{BatchedDesign, TwoLevelBlock};
use pairwise_mr::core::runner::local::run_local;
use pairwise_mr::core::runner::mr::{run_mr, run_mr_broadcast, run_mr_rounds, MrPairwiseOptions};
use pairwise_mr::core::runner::sequential::run_sequential;
use pairwise_mr::core::runner::{ConcatSort, FilterAggregator, Symmetry};
use pairwise_mr::core::scheme::{
    BlockScheme, BroadcastScheme, DesignScheme, DistributionScheme,
};

#[test]
fn dbscan_identical_across_all_backends_and_schemes() {
    let (points, _) = gaussian_clusters(60, 3, 2, 0.5, 42);
    let v = points.len() as u64;
    let eps = 3.0;

    let reference = run_sequential(&points, &euclidean_comp(), Symmetry::Symmetric, &ConcatSort);
    let ref_labels = dbscan(&reference, eps, 4);
    assert_eq!(num_clusters(&ref_labels), 3);

    // Local backend, each scheme.
    let schemes: Vec<Box<dyn DistributionScheme>> = vec![
        Box::new(BroadcastScheme::new(v, 5)),
        Box::new(BlockScheme::new(v, 4)),
        Box::new(DesignScheme::new(v)),
    ];
    for s in &schemes {
        let (out, _) =
            run_local(&points, s.as_ref(), &euclidean_comp(), Symmetry::Symmetric, &ConcatSort, 3);
        assert_eq!(dbscan(&out, eps, 4), ref_labels, "local/{}", s.name());
    }

    // MR backend with ε-pruning aggregation still yields the same clusters.
    let cluster = Cluster::new(ClusterConfig::with_nodes(3));
    let (out, _) = run_mr(
        &cluster,
        Arc::new(BlockScheme::new(v, 4)),
        &points,
        euclidean_comp(),
        Symmetry::Symmetric,
        Arc::new(FilterAggregator::new(move |d: &f64| *d <= eps)),
        MrPairwiseOptions::default(),
    )
    .unwrap();
    assert_eq!(dbscan(&out, eps, 4), ref_labels, "mr/pruned");
}

#[test]
fn covariance_pca_on_mr_matches_sequential() {
    let rows = random_matrix_rows(24, 60, 9);
    let reference = run_sequential(&rows, &covariance_comp(), Symmetry::Symmetric, &ConcatSort);
    let cluster = Cluster::new(ClusterConfig::with_nodes(4));
    let (out, _) = run_mr(
        &cluster,
        Arc::new(DesignScheme::new(24)),
        &rows,
        covariance_comp(),
        Symmetry::Symmetric,
        Arc::new(ConcatSort),
        MrPairwiseOptions::default(),
    )
    .unwrap();
    assert_eq!(out, reference);
    let m_seq = assemble_covariance(&rows, &reference);
    let m_mr = assemble_covariance(&rows, &out);
    assert_eq!(m_seq, m_mr);
    let eigs = top_eigenpairs(&m_mr, 2, 200);
    assert!(eigs[0].0 >= eigs[1].0);
}

#[test]
fn elsayed_and_generic_pairwise_agree_via_mr() {
    let docs = zipf_documents(30, 300, 25, 1.0, 3);
    let cluster = Cluster::new(ClusterConfig::with_nodes(3));
    let (pairwise, _) = run_mr(
        &cluster,
        Arc::new(BlockScheme::new(30, 3)),
        &docs,
        dot_comp(),
        Symmetry::Symmetric,
        Arc::new(ConcatSort),
        MrPairwiseOptions::default(),
    )
    .unwrap();
    let cluster2 = Cluster::new(ClusterConfig::with_nodes(3));
    let baseline = run_elsayed(&cluster2, &docs, "it-elsayed").unwrap();
    for ((a, b), d) in &baseline.dot_products {
        let r = pairwise
            .results_of(*a)
            .unwrap()
            .iter()
            .find(|(o, _)| o == b)
            .map(|(_, r)| *r)
            .unwrap();
        assert!((d - r).abs() < 1e-9 * (1.0 + r.abs()));
    }
}

#[test]
fn broadcast_cache_variant_equals_two_job_variant() {
    let payloads: Vec<u64> = (0..40u64).map(|i| i * 7 % 53).collect();
    let comp = pairwise_mr::core::comp_fn(|a: &u64, b: &u64| a.abs_diff(*b));
    let scheme = BroadcastScheme::new(40, 6);

    let c1 = Cluster::new(ClusterConfig::with_nodes(3));
    let (out_two_jobs, rep_two) = run_mr(
        &c1,
        Arc::new(scheme.clone()),
        &payloads,
        Arc::clone(&comp),
        Symmetry::Symmetric,
        Arc::new(ConcatSort),
        MrPairwiseOptions::default(),
    )
    .unwrap();

    let c2 = Cluster::new(ClusterConfig::with_nodes(3));
    let (out_cache, rep_cache) = run_mr_broadcast(
        &c2,
        &scheme,
        &payloads,
        comp,
        Symmetry::Symmetric,
        Arc::new(ConcatSort),
        MrPairwiseOptions::default(),
    )
    .unwrap();

    assert_eq!(out_two_jobs, out_cache);
    // The cache variant avoids shuffling v·p element copies through the
    // sort phase: its shuffle is strictly smaller.
    assert!(
        rep_cache.shuffle_bytes < rep_two.shuffle_bytes,
        "cache {} vs shuffle {}",
        rep_cache.shuffle_bytes,
        rep_two.shuffle_bytes
    );
}

#[test]
fn two_level_rounds_match_flat_and_bound_intermediate() {
    let payloads: Vec<u64> = (0..48u64).map(|i| i * 13 % 97).collect();
    let comp = pairwise_mr::core::comp_fn(|a: &u64, b: &u64| a.abs_diff(*b));
    let reference = run_sequential(&payloads, &comp, Symmetry::Symmetric, &ConcatSort);

    let tlb = TwoLevelBlock::new(48, 3, 2);
    let rounds: Vec<Arc<dyn DistributionScheme>> =
        tlb.rounds().into_iter().map(Arc::from).collect();
    let cluster = Cluster::new(ClusterConfig::with_nodes(3));
    let (out, reports) = run_mr_rounds(
        &cluster,
        rounds,
        &payloads,
        Arc::clone(&comp),
        Symmetry::Symmetric,
        Arc::new(ConcatSort),
        MrPairwiseOptions::default(),
    )
    .unwrap();
    assert_eq!(out, reference);
    assert_eq!(reports.len() as u64, tlb.num_rounds());

    // Compare against the flat block scheme with matching task granularity.
    let cluster_flat = Cluster::new(ClusterConfig::with_nodes(3));
    let (out_flat, report_flat) = run_mr(
        &cluster_flat,
        Arc::new(BlockScheme::new(48, 6)),
        &payloads,
        comp,
        Symmetry::Symmetric,
        Arc::new(ConcatSort),
        MrPairwiseOptions::default(),
    )
    .unwrap();
    assert_eq!(out_flat, reference);
    let max_round_peak =
        reports.iter().map(|r| r.peak_intermediate_bytes).max().unwrap();
    assert!(
        max_round_peak < report_flat.peak_intermediate_bytes,
        "hierarchical rounds should bound intermediate storage: {} vs flat {}",
        max_round_peak,
        report_flat.peak_intermediate_bytes
    );
}

#[test]
fn batched_design_rounds_match_flat_design() {
    let payloads: Vec<u64> = (0..31u64).map(|i| i * 11 % 89).collect();
    let comp = pairwise_mr::core::comp_fn(|a: &u64, b: &u64| a.abs_diff(*b));
    let reference = run_sequential(&payloads, &comp, Symmetry::Symmetric, &ConcatSort);

    let bd = BatchedDesign::new(31, 4);
    let rounds: Vec<Arc<dyn DistributionScheme>> = (0..bd.num_rounds())
        .map(|r| Arc::new(bd.round(r)) as Arc<dyn DistributionScheme>)
        .collect();
    let cluster = Cluster::new(ClusterConfig::with_nodes(3));
    let (out, reports) = run_mr_rounds(
        &cluster,
        rounds,
        &payloads,
        comp,
        Symmetry::Symmetric,
        Arc::new(ConcatSort),
        MrPairwiseOptions::default(),
    )
    .unwrap();
    assert_eq!(out, reference);
    assert_eq!(reports.len(), 4);
}

#[test]
fn nonsymmetric_comp_consistent_across_backends() {
    let payloads: Vec<u64> = (0..26u64).collect();
    let comp = pairwise_mr::core::comp_fn(|a: &u64, b: &u64| a * 100 + b);
    let reference = run_sequential(&payloads, &comp, Symmetry::NonSymmetric, &ConcatSort);
    let (local, _) = run_local(
        &payloads,
        &DesignScheme::new(26),
        &comp,
        Symmetry::NonSymmetric,
        &ConcatSort,
        2,
    );
    assert_eq!(local, reference);
    let cluster = Cluster::new(ClusterConfig::with_nodes(2));
    let (mr, _) = run_mr(
        &cluster,
        Arc::new(DesignScheme::new(26)),
        &payloads,
        comp,
        Symmetry::NonSymmetric,
        Arc::new(ConcatSort),
        MrPairwiseOptions::default(),
    )
    .unwrap();
    assert_eq!(mr, reference);
}
