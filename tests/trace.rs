//! End-to-end trace pipeline: a chaos-injected block-scheme run through
//! the MR backend, exported as Chrome-trace JSON and validated against
//! the viewer's schema — every event carries `ph`/`ts`/`pid`/`tid`,
//! timestamps are monotone within each (pid, tid) lane, and every
//! recovery event from the run report appears as an instant.

use std::collections::BTreeMap;
use std::sync::Arc;

use pairwise_mr::obs::export::chrome_trace;
use pairwise_mr::obs::{CriticalPath, JsonValue};
use pairwise_mr::prelude::*;

fn chaotic_block_run() -> PairwiseRun<u64> {
    let v = 40u64;
    let payloads: Vec<u64> = (0..v).map(|i| i * 37 % 101).collect();
    let cluster =
        Cluster::new(ClusterConfig::with_nodes(4).chaos(1, 5)).with_telemetry(Telemetry::enabled());
    PairwiseJob::new(&payloads, comp_fn(|a: &u64, b: &u64| a.wrapping_mul(31) ^ b))
        .scheme(BlockScheme::new(v, 5))
        .backend(Backend::Mr(&cluster))
        .run()
        .unwrap()
}

#[test]
fn chrome_trace_of_a_chaos_run_is_schema_valid_and_complete() {
    let run = chaotic_block_run();
    let report = &run.report;
    assert!(report.events.iter().any(|e| e.kind == "node.crash"), "chaos must fire");

    let text = chrome_trace(report);
    let root = JsonValue::parse(&text).expect("chrome trace must be valid JSON");
    let events = root
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("root must carry a traceEvents array");
    assert!(!events.is_empty());

    // Viewer schema: every event has a phase, a timestamp, and a lane.
    let mut lanes: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let mut instant_names: Vec<String> = Vec::new();
    for ev in events {
        let ph = ev.get("ph").and_then(|v| v.as_str()).expect("event missing ph");
        let ts = ev.get("ts").and_then(|v| v.as_f64()).expect("event missing ts");
        let pid = ev.get("pid").and_then(|v| v.as_u64()).expect("event missing pid");
        let tid = ev.get("tid").and_then(|v| v.as_u64()).expect("event missing tid");
        assert!(matches!(ph, "X" | "i"), "unexpected phase {ph}");
        // The exporter sorts globally by ts, so each lane sees monotone
        // timestamps — the invariant the viewer needs for stable stacks.
        let last = lanes.entry((pid, tid)).or_insert(0.0);
        assert!(ts >= *last, "lane ({pid},{tid}) went backwards: {ts} < {last}");
        *last = ts;
        if ph == "i" {
            instant_names
                .push(ev.get("name").and_then(|v| v.as_str()).unwrap_or_default().to_string());
        }
    }

    // Every recovery event in the run report is present as an instant.
    for kind in ["node.crash", "map.rerun", "dfs.rereplicate"] {
        let in_report = report.events.iter().filter(|e| e.kind == kind).count();
        let in_chrome = instant_names.iter().filter(|n| n.as_str() == kind).count();
        assert_eq!(in_chrome, in_report, "{kind}: report and chrome trace disagree");
    }
    let reruns: u64 = run.mr.iter().map(|r| r.map_reruns).sum();
    assert_eq!(
        instant_names.iter().filter(|n| n.as_str() == "map.rerun").count() as u64,
        reruns,
        "every recovered map task must surface in the exported trace"
    );
}

#[test]
fn critical_path_of_a_chaos_run_attributes_recovery() {
    let run = chaotic_block_run();
    let cp = CriticalPath::from_report(&run.report).unwrap();
    assert!(cp.duration_us <= cp.makespan_us);
    assert_eq!(cp.compute_us + cp.shuffle_us + cp.recovery_us + cp.wait_us, cp.duration_us);
    // Recovery time along the chain never exceeds the total rerun time
    // recorded in the trace.
    let total_rerun: u64 =
        run.report.trace.iter().filter(|e| e.kind == "map.rerun").map(|e| e.dur_us).sum();
    assert!(cp.recovery_us <= total_rerun, "{} > {}", cp.recovery_us, total_rerun);
}

#[test]
fn healthy_and_chaotic_outputs_agree_while_traces_differ() {
    // The trace layer is pure observation: chaos changes the trace, never
    // the result.
    let v = 40u64;
    let payloads: Vec<u64> = (0..v).map(|i| i * 37 % 101).collect();
    let comp = comp_fn(|a: &u64, b: &u64| a.wrapping_mul(31) ^ b);
    let healthy = {
        let cluster =
            Cluster::new(ClusterConfig::with_nodes(4)).with_telemetry(Telemetry::enabled());
        PairwiseJob::new(&payloads, Arc::clone(&comp))
            .scheme(BlockScheme::new(v, 5))
            .backend(Backend::Mr(&cluster))
            .run()
            .unwrap()
    };
    let chaotic = chaotic_block_run();
    assert_eq!(healthy.output, chaotic.output);
    assert!(healthy.report.trace.iter().all(|e| e.kind != "node.crash"));
    assert!(chaotic.report.trace.iter().any(|e| e.kind == "node.crash"));
}
