//! Fault-tolerance matrix: every distribution scheme must survive seeded
//! node crashes (and optional speculation) with byte-identical output and
//! exactly-once evaluation counts, and healthy runs must be bit-for-bit
//! unaffected by the existence of the chaos machinery.

use std::sync::Arc;

use pairwise_mr::prelude::*;

fn payloads(v: u64) -> Vec<u64> {
    (0..v).map(|i| i * 37 % 101).collect()
}

fn comp() -> CompFn<u64, u64> {
    comp_fn(|a: &u64, b: &u64| a.wrapping_mul(31) ^ b)
}

fn schemes(v: u64) -> Vec<(&'static str, Arc<dyn DistributionScheme>)> {
    vec![
        ("broadcast", Arc::new(BroadcastScheme::new(v, 6))),
        ("block", Arc::new(BlockScheme::new(v, 5))),
        ("design", Arc::new(DesignScheme::new(v))),
        ("quorum", Arc::new(QuorumScheme::new(v))),
    ]
}

fn run_on(cluster: &Cluster, scheme: Arc<dyn DistributionScheme>) -> PairwiseRun<u64> {
    PairwiseJob::new(&payloads(scheme.v()), comp())
        .scheme_arc(scheme)
        .backend(Backend::Mr(cluster))
        .telemetry(cluster.telemetry().clone())
        .run()
        .unwrap()
}

#[test]
fn every_scheme_survives_node_crashes_with_identical_output() {
    let v = 40u64;
    for (name, scheme) in schemes(v) {
        let healthy = {
            let cluster = Cluster::new(ClusterConfig::with_nodes(4));
            run_on(&cluster, Arc::clone(&scheme))
        };
        assert_eq!(healthy.evaluations(), v * (v - 1) / 2, "{name}: healthy run");

        for chaos_seed in [5u64, 23, 1009] {
            let cluster = Cluster::new(ClusterConfig::with_nodes(4).chaos(1, chaos_seed))
                .with_telemetry(Telemetry::enabled());
            let chaotic = run_on(&cluster, Arc::clone(&scheme));
            assert_eq!(cluster.node_crashes(), 1, "{name}/seed {chaos_seed}");
            assert_eq!(
                chaotic.output, healthy.output,
                "{name}/seed {chaos_seed}: output must be byte-identical under a crash"
            );
            assert_eq!(
                chaotic.evaluations(),
                v * (v - 1) / 2,
                "{name}/seed {chaos_seed}: evaluations must stay exactly-once"
            );
            // The run report records the crash, and the recovery stats
            // surface in the MR report.
            let crashes: u64 = chaotic.mr.iter().map(|r| r.node_crashes).sum();
            assert_eq!(crashes, 1, "{name}/seed {chaos_seed}");
            assert!(
                chaotic.report.events.iter().any(|e| e.kind == "node.crash"),
                "{name}/seed {chaos_seed}: node.crash event missing from the report"
            );
        }
    }
}

#[test]
fn quorum_matches_the_broadcast_reference_everywhere() {
    // Acceptance: the quorum scheme is bit-identical to a broadcast-scheme
    // reference across backend × fused × chaos-seed combinations — a
    // completely different task decomposition must not change one bit of
    // the aggregated result.
    let v = 40u64;
    let data = payloads(v);
    let reference = PairwiseJob::new(&data, comp())
        .scheme(BroadcastScheme::new(v, 6))
        .backend(Backend::Sequential)
        .run()
        .unwrap();

    let check = |label: &str, run: PairwiseRun<u64>| {
        assert_eq!(run.output, reference.output, "{label}: output differs from broadcast");
        assert_eq!(run.evaluations(), v * (v - 1) / 2, "{label}: not exactly-once");
    };

    let job = || PairwiseJob::new(&data, comp()).scheme(QuorumScheme::new(v));
    check("sequential", job().backend(Backend::Sequential).run().unwrap());
    check("local", job().backend(Backend::Local { threads: 4 }).run().unwrap());
    for fuse in [true, false] {
        let cluster = Cluster::new(ClusterConfig::with_nodes(4));
        check(
            &format!("mr/fuse={fuse}"),
            job().backend(Backend::Mr(&cluster)).fuse(fuse).run().unwrap(),
        );
        for chaos_seed in [5u64, 23, 1009] {
            let cluster = Cluster::new(ClusterConfig::with_nodes(4).chaos(1, chaos_seed));
            let run = job().backend(Backend::Mr(&cluster)).fuse(fuse).run().unwrap();
            assert_eq!(cluster.node_crashes(), 1, "fuse={fuse}/seed {chaos_seed}");
            check(&format!("mr/fuse={fuse}/chaos={chaos_seed}"), run);
        }
    }
}

#[test]
fn crashes_with_speculation_still_byte_identical() {
    let v = 36u64;
    let healthy = {
        let cluster = Cluster::new(ClusterConfig::with_nodes(4));
        run_on(&cluster, Arc::new(BlockScheme::new(v, 4)))
    };
    let cluster = Cluster::new(ClusterConfig::with_nodes(4).chaos(1, 77).speculation(2.0));
    let chaotic = run_on(&cluster, Arc::new(BlockScheme::new(v, 4)));
    assert_eq!(cluster.node_crashes(), 1);
    assert_eq!(chaotic.output, healthy.output);
    assert_eq!(chaotic.evaluations(), v * (v - 1) / 2);
    let launched: u64 = chaotic.mr.iter().map(|r| r.speculative_launched).sum();
    let won: u64 = chaotic.mr.iter().map(|r| r.speculative_won).sum();
    assert!(won <= launched, "backups can only win attempts that were launched");
}

#[test]
fn chaos_off_leaves_metrics_untouched() {
    // With chaos disabled, the fault-tolerance machinery must be fully
    // invisible: recovery stats are zero, no recovery counters exist, and
    // the charged-byte metrics are deterministic run to run.
    let v = 40u64;
    for (name, scheme) in schemes(v) {
        let a = {
            let cluster = Cluster::new(ClusterConfig::with_nodes(4));
            run_on(&cluster, Arc::clone(&scheme))
        };
        let b = {
            let cluster = Cluster::new(ClusterConfig::with_nodes(4));
            run_on(&cluster, Arc::clone(&scheme))
        };
        for report in a.mr.iter().chain(b.mr.iter()) {
            assert_eq!(report.node_crashes, 0, "{name}");
            assert_eq!(report.map_reruns, 0, "{name}");
            assert_eq!(report.speculative_launched, 0, "{name}");
            for counters in std::iter::once(&report.job1.counters)
                .chain(report.job2.iter().map(|j| &j.counters))
            {
                for key in counters.keys() {
                    assert!(
                        !key.starts_with("mr.node.") && !key.starts_with("mr.speculative."),
                        "{name}: healthy run grew counter {key}"
                    );
                    assert_ne!(key, "mr.map.reruns", "{name}");
                }
            }
        }
        // Charged-byte metrics (the paper-model numbers) are deterministic.
        // Raw network_bytes is not asserted: concurrent reduce commits bump
        // the DFS placement counter in completion order, so replica
        // locality of output blocks — and with it a few hundred moved
        // bytes — varies run to run even on a healthy cluster.
        let metrics = |r: &PairwiseRun<u64>| {
            let m = &r.mr[0];
            (
                m.shuffle_bytes,
                m.shuffle_moved_bytes,
                m.replicated_records,
                m.peak_intermediate_bytes,
            )
        };
        assert_eq!(metrics(&a), metrics(&b), "{name}: charged-byte metrics must be deterministic");
        assert_eq!(a.output, b.output, "{name}");
    }
}
