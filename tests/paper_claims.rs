//! The paper's headline quantitative claims, asserted as tests.
//!
//! Each test cites the section of *Pairwise Element Computation with
//! MapReduce* (HPDC 2010) it checks. These are the "shape" claims a
//! reproduction must get right even though the hardware differs.

use pairwise_mr::core::analysis::limits::{
    block_design_crossover, fig9b_point, h_bounds, max_dataset_bytes_block, max_v_broadcast,
    max_v_design, units::*,
};
use pairwise_mr::core::analysis::table1::{block_row, broadcast_row, design_row};
use pairwise_mr::core::enumeration::pair_count;
use pairwise_mr::core::scheme::{measure, verify_exactly_once, DesignScheme};
use pairwise_mr::designs::primes::{plane_size, smallest_plane_order};

/// §3: "Assume a dataset of 10,000 elements, 500KB each … The resulting
/// dataset is about 6.5GB (instead of 50TB that would result from
/// quadratic expansion)."
#[test]
fn section3_storage_example() {
    let v: u64 = 10_000;
    let element = 500u64 << 10; // 500 KB
    let entry = 16u64; // 8 B id + 8 B result
    let per_element_results = (v - 1) * entry;
    // "each element is about 650KB; 500KB … and 9,999 ∗ 16B ≈ 150KB"
    assert!((per_element_results as f64 / 1024.0 - 156.2).abs() < 1.0);
    let total = v * (element + per_element_results);
    // "about 6.5GB"
    assert!((total as f64 / 1e9 - 6.5).abs() < 0.3, "{total}");
    // "instead of 50TB": v(v−1)/2 pairs × (2 element copies of 500KB each)
    // — the naive quadratic materialization.
    let quadratic = pair_count(v) as f64 * 2.0 * element as f64;
    assert!((quadratic / 1e12 - 51.2).abs() < 2.0, "{quadratic}");
}

/// §5.3: "If, e.g., v = 10,000, then q = 101; hence, the first q + 1 = 102
/// working sets are dominated by the following 10,201 working sets."
#[test]
fn section53_worked_example() {
    let q = smallest_plane_order(10_000);
    assert_eq!(q, 101);
    assert_eq!(plane_size(q), 10_303);
    assert_eq!(plane_size(q) - (q + 1), 10_201);
}

/// §5 Problem statement: "each pair of elements is evaluated exactly once
/// among all nodes" — checked exhaustively for the design scheme at an
/// irregular (truncated) size.
#[test]
fn section5_exactly_once_for_truncated_design() {
    let s = DesignScheme::new(137);
    verify_exactly_once(&s).unwrap();
    assert_eq!(measure(&s).total_pairs, pair_count(137));
}

/// Table 1: the three communication-cost formulas at the paper's
/// parameters and the working-set/replication columns.
#[test]
fn table1_formulas() {
    let (v, n, h) = (10_000u64, 100u64, 20u64);
    assert_eq!(broadcast_row(v, n, n).communication_elements, 2 * v * n);
    assert_eq!(block_row(v, h, n).communication_elements, 2 * v * h);
    // Design comm ≈ 2v√v capped at 2vn; with n = 100 < √v + 1 the cap binds.
    assert_eq!(design_row(v, n).communication_elements, 2 * v * n);
    assert_eq!(block_row(v, h, n).working_set_size, 2 * (v / h));
    assert_eq!(design_row(v, n).replication_factor, 102.0);
}

/// Figure 8(a): broadcast limit `maxws/s` at chart anchor points.
#[test]
fn figure8a_anchor_points() {
    assert_eq!(max_v_broadcast(10.0 * KB, 200.0 * MB), 20_000.0);
    assert_eq!(max_v_broadcast(10.0 * MB, 1.0 * GB), 100.0);
}

/// Figure 8(b): design limit `(maxis/s)^(2/3)` at chart anchor points.
#[test]
fn figure8b_anchor_points() {
    assert_eq!(max_v_design(1.0 * MB, 1.0 * TB), 10_000.0);
    assert_eq!(max_v_design(100.0 * KB, 100.0 * GB), 10_000.0);
}

/// §6 / Figure 9(a): "Having, e.g., a dataset of size 4GB, it follows that
/// h can be chosen arbitrarily between 39 and 263." (Exact decimal values
/// are [40, 250]; the paper reads its own log-log chart.)
#[test]
fn figure9a_4gb_datum() {
    let (lo, hi) = h_bounds(4.0 * GB, 200.0 * MB, 1.0 * TB).unwrap();
    assert!((38..=42).contains(&lo), "lo = {lo}");
    assert!((245..=265).contains(&hi), "hi = {hi}");
}

/// §6: the necessary condition `vs ≤ sqrt(maxws·maxis/2)` — 10 GB for the
/// default limits.
#[test]
fn figure9a_existence_threshold() {
    let t = max_dataset_bytes_block(200.0 * MB, 1.0 * TB);
    assert!((t - 10.0 * GB).abs() < 1e3);
    assert!(h_bounds(9.0 * GB, 200.0 * MB, 1.0 * TB).is_some());
    assert!(h_bounds(11.0 * GB, 200.0 * MB, 1.0 * TB).is_none());
}

/// §6 / Figure 9(b): "the design and block approach have a cross-over
/// point and … for large elements (> 1MB) the design approach allows a few
/// more elements in the dataset than the block approach does."
#[test]
fn figure9b_crossover_claim() {
    let s_star = block_design_crossover(200.0 * MB, 1.0 * TB);
    assert!((s_star / MB - 1.0).abs() < 0.01, "crossover at {} MB", s_star / MB);
    let below = fig9b_point(300.0 * KB, 200.0 * MB, 1.0 * TB);
    assert!(below.block > below.design);
    let above = fig9b_point(2.0 * MB, 200.0 * MB, 1.0 * TB);
    assert!(above.design > above.block, "design wins above 1MB");
    // "the broadcast approach is only reasonable for smaller datasets".
    for s in [10.0 * KB, 1.0 * MB, 10.0 * MB] {
        let p = fig9b_point(s, 200.0 * MB, 1.0 * TB);
        assert!(p.broadcast <= p.block && p.broadcast <= p.design);
    }
}

/// §5.1: broadcast tasks are "well balanced" — contiguous ⌈total/p⌉-sized
/// label ranges, so only the last task can fall short, by less than `p`
/// pairs (a vanishing fraction of the ~v²/2p pairs per task).
#[test]
fn section51_balance() {
    use pairwise_mr::core::scheme::BroadcastScheme;
    for (v, p) in [(1000u64, 7u64), (999, 13), (500, 64)] {
        let m = measure(&BroadcastScheme::new(v, p));
        // Structural bound: with chunk = ⌈total/p⌉ only the last task runs
        // short, by p·chunk − total < p pairs.
        assert!(m.max_evaluations - m.min_evaluations < p, "v={v} p={p}: {m:?}");
    }
}
