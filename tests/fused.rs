//! Fused-aggregation acceptance matrix: with a decomposable aggregator the
//! MR backend must skip job 2 entirely while staying bit-identical to the
//! unfused two-job pipeline — same output, same charged bytes (the paper's
//! cost model), collapsed moved bytes — across every scheme and backend,
//! including seeded node-crash runs.

use std::sync::Arc;

use pairwise_mr::mapreduce::builtin;
use pairwise_mr::prelude::*;

fn payloads(v: u64) -> Vec<u64> {
    (0..v).map(|i| i * 37 % 101).collect()
}

fn comp() -> CompFn<u64, u64> {
    comp_fn(|a: &u64, b: &u64| a.wrapping_mul(31) ^ b)
}

fn schemes(v: u64) -> Vec<(&'static str, Arc<dyn DistributionScheme>)> {
    vec![
        ("broadcast", Arc::new(BroadcastScheme::new(v, 6))),
        ("block", Arc::new(BlockScheme::new(v, 5))),
        ("design", Arc::new(DesignScheme::new(v))),
        ("quorum", Arc::new(QuorumScheme::new(v))),
    ]
}

fn mr_run(
    scheme: Arc<dyn DistributionScheme>,
    aggregator: Arc<dyn Aggregator<u64>>,
    fuse: bool,
) -> PairwiseRun<u64> {
    let cluster = Cluster::new(ClusterConfig::with_nodes(4));
    PairwiseJob::new(&payloads(scheme.v()), comp())
        .scheme_arc(scheme)
        .backend(Backend::Mr(&cluster))
        .aggregator_arc(aggregator)
        .fuse(fuse)
        .run()
        .unwrap()
}

#[test]
fn fused_mr_skips_job2_with_identical_output_and_charged_bytes() {
    let v = 40u64;
    for (name, scheme) in schemes(v) {
        let fused = mr_run(Arc::clone(&scheme), Arc::new(ConcatSort), true);
        let unfused = mr_run(Arc::clone(&scheme), Arc::new(ConcatSort), false);

        // The fused path is a single job; the unfused path is the paper's
        // literal two-job pipeline.
        let (f, u) = (&fused.mr[0], &unfused.mr[0]);
        assert!(f.fused && f.job2.is_none(), "{name}: fused run must skip job 2");
        assert!(!u.fused && u.job2.is_some(), "{name}: unfused run must keep job 2");

        // Output is bit-identical.
        assert_eq!(fused.output, unfused.output, "{name}");
        assert_eq!(fused.evaluations(), v * (v - 1) / 2, "{name}");
        assert_eq!(unfused.evaluations(), v * (v - 1) / 2, "{name}");

        // The paper's cost model is untouched: charged shuffle bytes and
        // replication counts are byte-identical — fusion only changes what
        // physically moves.
        assert_eq!(f.shuffle_bytes, u.shuffle_bytes, "{name}: charged bytes must not change");
        assert_eq!(f.replicated_records, u.replicated_records, "{name}");
        assert!(
            f.shuffle_moved_bytes < u.shuffle_moved_bytes,
            "{name}: moved bytes must collapse ({} vs {})",
            f.shuffle_moved_bytes,
            u.shuffle_moved_bytes
        );

        // The synthetic charge is bookkept exactly: job-1 physical shuffle
        // plus the fused-charge counter reconstructs the two-job total.
        let job1_shuffle = f.job1.counters[builtin::SHUFFLE_BYTES];
        let charge = f.job1.counters[FUSED_CHARGED_SHUFFLE_COUNTER];
        assert!(charge > 0, "{name}");
        assert_eq!(f.shuffle_bytes, job1_shuffle + charge, "{name}");
    }
}

#[test]
fn fused_output_identical_across_backends_and_aggregators() {
    let v = 36u64;
    let data = payloads(v);
    let aggregators: Vec<(&'static str, Arc<dyn Aggregator<u64>>)> = vec![
        ("concat", Arc::new(ConcatSort)),
        ("filter", Arc::new(FilterAggregator::new(|r: &u64| !r.is_multiple_of(3)))),
        ("topk", Arc::new(TopKAggregator::new(5, |r: &u64| *r as f64))),
    ];
    for (agg_name, agg) in aggregators {
        let reference = PairwiseJob::new(&data, comp())
            .scheme(BlockScheme::new(v, 4))
            .aggregator_arc(Arc::clone(&agg))
            .run()
            .unwrap()
            .output;
        for fuse in [true, false] {
            for threads in [1usize, 4] {
                let run = PairwiseJob::new(&data, comp())
                    .scheme(BlockScheme::new(v, 4))
                    .backend(Backend::Local { threads })
                    .aggregator_arc(Arc::clone(&agg))
                    .fuse(fuse)
                    .run()
                    .unwrap();
                assert_eq!(run.output, reference, "{agg_name}: local/{threads} fuse={fuse}");
            }
            let run = mr_run(Arc::new(BlockScheme::new(v, 4)), Arc::clone(&agg), fuse);
            assert_eq!(run.output, reference, "{agg_name}: mr fuse={fuse}");
        }
    }
}

#[test]
fn fused_path_is_exactly_once_under_seeded_node_crashes() {
    let v = 40u64;
    let agg = || Arc::new(FilterAggregator::new(|r: &u64| !r.is_multiple_of(3)));
    for (name, scheme) in schemes(v) {
        let healthy = mr_run(Arc::clone(&scheme), agg(), true);
        assert!(healthy.mr[0].fused, "{name}");
        for chaos_seed in [5u64, 23, 1009] {
            let cluster = Cluster::new(ClusterConfig::with_nodes(4).chaos(1, chaos_seed));
            let chaotic = PairwiseJob::new(&payloads(v), comp())
                .scheme_arc(Arc::clone(&scheme))
                .backend(Backend::Mr(&cluster))
                .aggregator_arc(agg())
                .run()
                .unwrap();
            assert_eq!(cluster.node_crashes(), 1, "{name}/seed {chaos_seed}");
            let report = &chaotic.mr[0];
            assert!(report.fused && report.job2.is_none(), "{name}/seed {chaos_seed}");
            assert_eq!(
                chaotic.output, healthy.output,
                "{name}/seed {chaos_seed}: fused output must survive a crash bit-identically"
            );
            // Exactly-once: committed evaluation counts (and the fused
            // charge) ignore killed and duplicate attempts.
            assert_eq!(
                chaotic.evaluations(),
                v * (v - 1) / 2,
                "{name}/seed {chaos_seed}: evaluations must stay exactly-once"
            );
            assert_eq!(
                report.job1.counters[FUSED_CHARGED_SHUFFLE_COUNTER],
                healthy.mr[0].job1.counters[FUSED_CHARGED_SHUFFLE_COUNTER],
                "{name}/seed {chaos_seed}: fused charge must stay exactly-once"
            );
        }
    }
}
