//! # pairwise-mr
//!
//! Parallel pairwise element computation with MapReduce-style distribution
//! schemes — a reproduction of *Pairwise Element Computation with
//! MapReduce* (Tim Kiefer, Peter Benjamin Volk, Wolfgang Lehner; HPDC 2010,
//! DOI 10.1145/1851476.1851595).
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`core`] (`pmr-core`) — distribution schemes (broadcast / block /
//!   design), execution backends (sequential, local threads, MapReduce),
//!   the paper's analytic models, and the §7 hierarchical extensions;
//! * [`designs`] (`pmr-designs`) — finite fields, projective planes,
//!   `(v, k, 1)`-designs;
//! * [`cluster`] (`pmr-cluster`) — the simulated shared-nothing cluster;
//! * [`mapreduce`] (`pmr-mapreduce`) — the MapReduce framework;
//! * [`apps`] (`pmr-apps`) — DBSCAN, document similarity (incl. the
//!   Elsayed baseline), mutual information, covariance/PCA.
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` /
//! `EXPERIMENTS.md` for the paper-reproduction map.

#![forbid(unsafe_code)]

pub use pmr_apps as apps;
pub use pmr_cluster as cluster;
pub use pmr_core as core;
pub use pmr_designs as designs;
pub use pmr_mapreduce as mapreduce;
