//! # pairwise-mr
//!
//! Parallel pairwise element computation with MapReduce-style distribution
//! schemes — a reproduction of *Pairwise Element Computation with
//! MapReduce* (Tim Kiefer, Peter Benjamin Volk, Wolfgang Lehner; HPDC 2010,
//! DOI 10.1145/1851476.1851595).
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`core`] (`pmr-core`) — distribution schemes (broadcast / block /
//!   design / cyclic-quorum), execution backends (sequential, local
//!   threads, MapReduce), the paper's analytic models, and the §7
//!   hierarchical extensions;
//! * [`designs`] (`pmr-designs`) — finite fields, projective planes,
//!   `(v, k, 1)`-designs, difference covers of `Z_v`;
//! * [`cluster`] (`pmr-cluster`) — the simulated shared-nothing cluster;
//! * [`mapreduce`] (`pmr-mapreduce`) — the MapReduce framework;
//! * [`apps`] (`pmr-apps`) — DBSCAN, document similarity (incl. the
//!   Elsayed baseline), mutual information, covariance/PCA.
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` /
//! `EXPERIMENTS.md` for the paper-reproduction map.

#![forbid(unsafe_code)]

pub use pmr_apps as apps;
pub use pmr_cluster as cluster;
pub use pmr_core as core;
pub use pmr_designs as designs;
pub use pmr_mapreduce as mapreduce;
pub use pmr_obs as obs;

/// One-stop imports for the common workflow: build a [`PairwiseJob`](
/// prelude::PairwiseJob), pick a scheme and a backend, run it, and read
/// the [`RunReport`](prelude::RunReport).
///
/// ```
/// use pairwise_mr::prelude::*;
///
/// let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
/// let run = PairwiseJob::from_fn(&data, |a: &f64, b: &f64| (a - b).abs())
///     .scheme(BlockScheme::new(50, 5))
///     .backend(Backend::Local { threads: 2 })
///     .telemetry(Telemetry::enabled())
///     .run()
///     .unwrap();
/// assert_eq!(run.evaluations(), 50 * 49 / 2);
/// assert!(run.report.wall_time_us > 0);
/// ```
pub mod prelude {
    pub use pmr_cluster::{Cluster, ClusterConfig, NodeConfig, SocketMode, TransportKind};
    pub use pmr_core::runner::mr::{
        MrPairwiseOptions, MrRunReport, EVALUATIONS_COUNTER, FUSED_CHARGED_SHUFFLE_COUNTER,
    };
    pub use pmr_core::runner::{
        aggregate_all, comp_fn, Accumulator, Aggregator, Backend, CompFn, ConcatSort,
        DecomposableAggregator, ElementStore, FilterAggregator, FnAggregator, PairFilter,
        PairwiseJob, PairwiseOutput, PairwiseRun, PruneStats, Symmetry, TopKAggregator,
        CANDIDATE_PAIRS_COUNTER, EVALUATED_PAIRS_COUNTER, PRUNED_PAIRS_COUNTER,
    };
    pub use pmr_core::scheme::{
        BlockScheme, BroadcastScheme, DesignScheme, DistributionScheme, PairedBlockScheme,
        QuorumScheme,
    };
    pub use pmr_obs::{RunReport, Telemetry};
}
